"""Command line entry point: ``repro-experiments`` (or ``python -m repro.cli``).

Subcommands:

* ``run [EXPERIMENT ...|all]`` — run experiments through a shared
  :class:`~repro.runtime.session.Session`; ``--jobs N`` shards the work
  across a process pool, ``--cache-dir`` persists traces and profiling
  state between invocations, ``--format`` selects the reporter and
  ``--full``/``--smoke`` apply uniformly to every experiment that declares
  the corresponding options in its registry metadata.
* ``eval [FILE ...]`` — answer declarative :mod:`repro.api` evaluation
  requests from JSON request files (single requests, request lists or
  parameter sweeps); ``--backends`` prints the backend capability matrix
  and the machine-preset table.
* ``serve`` — the long-lived evaluation service (:mod:`repro.service`):
  ``POST /v1/eval``/``/v1/sweep`` over a warm shared session, with
  ``--port/--jobs/--cache-dir/--max-queue`` and a graceful drain on
  Ctrl-C.
* ``cache`` — inspect (or ``--clear``) an artifact-cache directory.
* ``list`` — the experiment registry: names, artefacts, declared options.
* ``bench`` — the core hot-path benchmark (see :mod:`repro.bench`).

Tables go to stdout; the end-of-run session report goes to stderr, so
redirected output stays byte-identical between serial and parallel runs.
"""

from __future__ import annotations

import argparse
import sys

from repro.runtime import (
    Session,
    experiment_names,
    get_experiment,
    pooled_session,
    render,
    render_many,
    run_experiment,
)
from repro.runtime.reporters import REPORTERS, format_table


def _package_version() -> str:
    """The installed distribution version, or the source tree's fallback."""
    import importlib.metadata

    try:
        return importlib.metadata.version("repro-ispass2012-inorder-model")
    except importlib.metadata.PackageNotFoundError:
        from repro import __version__

        return __version__


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description=(
            "Reproduce the tables and figures of 'A Mechanistic Performance "
            "Model for Superscalar In-Order Processors' (ISPASS 2012)."
        ),
    )
    parser.add_argument(
        "--version", action="version",
        version=f"%(prog)s {_package_version()}",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    run_parser = subparsers.add_parser(
        "run", help="run one or more experiments (default: all)"
    )
    run_parser.add_argument(
        "experiments",
        nargs="*",
        default=["all"],
        help="experiment names from 'list', or 'all' (the default)",
    )
    run_parser.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="shard work across N worker processes (default: 1, serial)",
    )
    run_parser.add_argument(
        "--format", choices=sorted(REPORTERS), default="text",
        help="output format (default: text)",
    )
    run_parser.add_argument(
        "--cache-dir", default=None, metavar="DIR",
        help="artifact cache directory; traces and profiling state are "
             "reused across runs (default: no on-disk cache)",
    )
    run_parser.add_argument(
        "--full", action="store_true",
        help="use the full 192-point design space in every experiment "
             "that declares the 'full' option (slow)",
    )
    run_parser.add_argument(
        "--smoke", action="store_true",
        help="apply each experiment's registered fast-subset preset",
    )
    run_parser.add_argument(
        "--accel", choices=("auto", "numpy", "python"), default=None,
        metavar="BACKEND",
        help="profiling-kernel backend: numpy, python, or auto "
             "(default: the REPRO_ACCEL environment variable, then auto)",
    )
    run_parser.add_argument(
        "--dataplane", choices=("auto", "shm", "payload"), default=None,
        metavar="PLANE",
        help="trace transport for --jobs workers: shm (zero-copy shared "
             "memory), payload (column bytes), or auto (default: the "
             "REPRO_DATAPLANE environment variable, then auto)",
    )

    eval_parser = subparsers.add_parser(
        "eval",
        help="answer repro.api evaluation requests from JSON request files",
    )
    eval_parser.add_argument(
        "requests", nargs="*", metavar="FILE",
        help="JSON request files ('-' reads stdin); each may hold a single "
             "request, a request list, a sweep, or a "
             "{'requests': [...], 'sweeps': [...]} envelope",
    )
    eval_parser.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="shard the batch across N worker processes (default: 1, serial)",
    )
    eval_parser.add_argument(
        "--format", choices=sorted(REPORTERS), default="text",
        help="output format (default: text)",
    )
    eval_parser.add_argument(
        "--cache-dir", default=None, metavar="DIR",
        help="artifact cache directory shared with 'run' (default: none)",
    )
    eval_parser.add_argument(
        "--backends", action="store_true",
        help="print the backend capability matrix, machine presets and "
             "kernel backends, then exit",
    )
    eval_parser.add_argument(
        "--accel", choices=("auto", "numpy", "python"), default=None,
        metavar="BACKEND",
        help="profiling-kernel backend: numpy, python, or auto "
             "(default: the REPRO_ACCEL environment variable, then auto)",
    )
    eval_parser.add_argument(
        "--dataplane", choices=("auto", "shm", "payload"), default=None,
        metavar="PLANE",
        help="trace transport for --jobs workers: shm, payload, or auto "
             "(default: the REPRO_DATAPLANE environment variable, then auto)",
    )

    serve_parser = subparsers.add_parser(
        "serve",
        help="run the evaluation service (POST /v1/eval, /v1/sweep; "
             "GET /v1/health, /v1/metrics)",
    )
    serve_parser.add_argument(
        "--host", default="127.0.0.1", metavar="ADDR",
        help="address to bind (default: 127.0.0.1)",
    )
    serve_parser.add_argument(
        "--port", type=int, default=8765, metavar="PORT",
        help="port to bind; 0 picks an ephemeral port (default: 8765)",
    )
    serve_parser.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="evaluation workers; batches also shard across N processes "
             "(default: 1)",
    )
    serve_parser.add_argument(
        "--cache-dir", default=None, metavar="DIR",
        help="artifact cache directory shared with 'run'/'eval'; keeps "
             "traces and profiling state warm across restarts "
             "(default: in-memory only)",
    )
    serve_parser.add_argument(
        "--max-queue", type=int, default=64, metavar="N",
        help="bounded job-queue length; a full queue answers 503 "
             "(default: 64)",
    )
    serve_parser.add_argument(
        "--cache-capacity", type=int, default=1024, metavar="N",
        help="result-cache entries kept in memory (default: 1024)",
    )
    serve_parser.add_argument(
        "--cache-ttl", type=float, default=600.0, metavar="SECONDS",
        help="result-cache entry lifetime (default: 600)",
    )
    serve_parser.add_argument(
        "--cache-max-bytes", default="64MB", metavar="SIZE",
        help="result-cache byte budget, e.g. '64MB' (default: 64MB)",
    )
    serve_parser.add_argument(
        "--accel", choices=("auto", "numpy", "python"), default=None,
        metavar="BACKEND",
        help="profiling-kernel backend: numpy, python, or auto "
             "(default: the REPRO_ACCEL environment variable, then auto); "
             "published in GET /v1/metrics",
    )
    serve_parser.add_argument(
        "--dataplane", choices=("auto", "shm", "payload"), default=None,
        metavar="PLANE",
        help="trace transport for --jobs workers: shm, payload, or auto "
             "(default: the REPRO_DATAPLANE environment variable, then "
             "auto); published in GET /v1/metrics",
    )

    cache_parser = subparsers.add_parser(
        "cache", help="inspect or clear an artifact-cache directory"
    )
    cache_parser.add_argument(
        "--cache-dir", required=True, metavar="DIR",
        help="the artifact cache directory to inspect",
    )
    cache_parser.add_argument(
        "--clear", action="store_true",
        help="delete every cache entry after printing the stats",
    )

    list_parser = subparsers.add_parser(
        "list", help="list registered experiments and their metadata"
    )
    list_parser.add_argument(
        "--format", choices=("text", "json"), default="text",
        help="output format (default: text)",
    )

    bench_parser = subparsers.add_parser(
        "bench", help="run the core hot-path benchmark (writes BENCH_core.json)"
    )
    bench_parser.add_argument("--output", default=None, metavar="PATH",
                              help="where to write the results JSON")
    bench_parser.add_argument("--repeat", type=int, default=3, metavar="N",
                              help="timed repetitions per benchmark "
                                   "(the median is reported; default: 3)")
    bench_parser.add_argument("--jobs", type=int, default=1, metavar="N",
                              help="worker processes for the job-aware "
                                   "benchmarks; recorded in the output")
    bench_parser.add_argument("--compare", default=None, metavar="REFERENCE",
                              help="reference BENCH json; exit non-zero when "
                                   "a shared benchmark's median regresses "
                                   "beyond --tolerance")
    bench_parser.add_argument("--tolerance", type=float, default=25.0,
                              metavar="PCT",
                              help="allowed regression vs --compare, in "
                                   "percent (default: 25)")
    bench_parser.add_argument(
        "--accel", choices=("auto", "numpy", "python"), default=None,
        metavar="BACKEND",
        help="profiling-kernel backend: numpy, python, or auto "
             "(default: the REPRO_ACCEL environment variable, then auto)",
    )
    bench_parser.add_argument(
        "--dataplane", choices=("auto", "shm", "payload"), default=None,
        metavar="PLANE",
        help="trace transport for --jobs workers: shm, payload, or auto "
             "(default: the REPRO_DATAPLANE environment variable, then "
             "auto); recorded in the output",
    )
    return parser


def _apply_accel(args: argparse.Namespace) -> None:
    """Select the kernel backend before any profiling work starts.

    Also exported through ``REPRO_ACCEL`` so ``--jobs`` worker processes
    (which resolve their backend independently) inherit the choice.
    """
    choice = getattr(args, "accel", None)
    if choice is None:
        return
    import os

    from repro.accel import ACCEL_ENV, set_backend

    try:
        set_backend(choice)
    except ValueError as exc:
        raise SystemExit(f"--accel: {exc}") from exc
    os.environ[ACCEL_ENV] = choice


def _apply_dataplane(args: argparse.Namespace) -> None:
    """Select the trace transport before any sharded work starts.

    Also exported through ``REPRO_DATAPLANE`` so worker processes (which
    resolve the plane independently) inherit the choice.
    """
    choice = getattr(args, "dataplane", None)
    if choice is None:
        return
    import os

    from repro.runtime.dataplane import DATAPLANE_ENV, set_mode

    try:
        set_mode(choice)
    except ValueError as exc:
        raise SystemExit(f"--dataplane: {exc}") from exc
    os.environ[DATAPLANE_ENV] = choice


def _select_experiments(names: list[str]) -> list[str]:
    known = experiment_names()
    if not names or "all" in names:
        return known
    unknown = sorted(set(names) - set(known))
    if unknown:
        raise SystemExit(
            f"unknown experiments: {', '.join(unknown)} "
            f"(known: {', '.join(known)})"
        )
    # Run in registry (paper) order regardless of the order given.
    requested = set(names)
    return [name for name in known if name in requested]


def _cmd_run(args: argparse.Namespace) -> int:
    selected = _select_experiments(args.experiments)
    with pooled_session(args.cache_dir, args.jobs) as session:
        if args.format == "json":
            results = [
                run_experiment(session, name, full=args.full, smoke=args.smoke)
                for name in selected
            ]
            sys.stdout.write(render_many(results, "json") + "\n")
        else:
            # Stream text/csv: each experiment's table appears as soon as it
            # finishes (byte-identical to render_many over the whole batch).
            sections = args.format == "text" or len(selected) > 1
            for index, name in enumerate(selected):
                result = run_experiment(session, name, full=args.full,
                                        smoke=args.smoke)
                if sections:
                    prefix = "\n" if index else ""
                    sys.stdout.write(f"{prefix}=== {name} ===\n")
                sys.stdout.write(render(result, args.format) + "\n")
                sys.stdout.flush()
    _session_report(session)
    return 0


def _session_report(session: Session) -> None:
    summary = session.summary()
    cache = summary.pop("artifact_cache")
    stages = summary.pop("stages")
    report = ("session: "
              + "  ".join(f"{key}={value}" for key, value in summary.items())
              + "  cache(" + " ".join(f"{k}={v}" for k, v in cache.items())
              + ")")
    if stages:
        report += ("  stages("
                   + " ".join(f"{k}={v:.3f}s" for k, v in stages.items())
                   + ")")
    print(report, file=sys.stderr)


def _cmd_eval(args: argparse.Namespace) -> int:
    from pathlib import Path

    from repro.api import capability_matrix, evaluate_many, load_requests
    from repro.api.batch import results_table

    if args.backends:
        from repro.machine import MACHINE_PRESETS, format_size

        rows = [
            (name, *("yes" if flag else "no" for flag in (
                capabilities.cpi_stack, capabilities.cycle_accurate,
                capabilities.exact_miss_events, capabilities.power)))
            for name, capabilities in capability_matrix()
        ]
        print(format_table(
            ("backend", "cpi stack", "cycle accurate", "exact misses", "power"),
            rows,
        ))
        preset_rows = []
        for name in MACHINE_PRESETS.names():
            machine = MACHINE_PRESETS.get(name)()
            preset_rows.append((
                name, machine.width, machine.pipeline_stages,
                f"{machine.frequency_mhz} MHz",
                format_size(machine.l1i_size), format_size(machine.l1d_size),
                f"{format_size(machine.l2_size)} "
                f"{machine.l2_associativity}-way",
                machine.branch_predictor,
            ))
        print()
        print(format_table(
            ("preset", "width", "stages", "clock", "L1I", "L1D", "L2",
             "branch predictor"),
            preset_rows,
        ))
        from repro.accel import active_backend, available_backends

        active = active_backend()
        print()
        print(format_table(
            ("kernel backend", "available", "active"),
            [(name, "yes" if usable else "no",
              "yes" if name == active else "no")
             for name, usable in available_backends().items()],
        ))
        return 0
    if not args.requests:
        raise SystemExit("eval needs at least one request file (or --backends)")

    requests = []
    for source in args.requests:
        try:
            text = sys.stdin.read() if source == "-" else Path(source).read_text()
            requests.extend(load_requests(text))
        except (OSError, ValueError, KeyError) as exc:
            raise SystemExit(f"{source}: {exc}") from exc

    with pooled_session(args.cache_dir, args.jobs) as session:
        try:
            results = evaluate_many(requests, session=session)
        except (ValueError, KeyError, TypeError) as exc:
            # Unresolvable names and malformed values (backend, preset,
            # workload, override field, size string) are caught by the batch
            # layer's upfront validation — surface them as a clean message,
            # not a traceback.
            raise SystemExit(str(exc)) from exc
        sys.stdout.write(render(results_table(results), args.format) + "\n")
    _session_report(session)
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    import asyncio

    from repro.machine import parse_size
    from repro.service.server import ServiceConfig, serve

    try:
        cache_max_bytes = parse_size(args.cache_max_bytes)
    except (ValueError, TypeError) as exc:
        raise SystemExit(f"--cache-max-bytes: {exc}") from exc
    config = ServiceConfig(
        host=args.host, port=args.port, jobs=args.jobs,
        max_queue=args.max_queue, cache_dir=args.cache_dir,
        cache_capacity=args.cache_capacity, cache_ttl=args.cache_ttl,
        cache_max_bytes=cache_max_bytes,
    )

    def announce(server) -> None:
        print(
            f"repro.service listening on http://{config.host}:{server.port} "
            f"(jobs={config.jobs}, max_queue={config.max_queue}, "
            f"cache_dir={config.cache_dir or '<memory>'}) — Ctrl-C drains "
            "and stops",
            file=sys.stderr,
        )

    try:
        asyncio.run(serve(config, ready=announce))
    except KeyboardInterrupt:
        print("repro.service: drained and stopped", file=sys.stderr)
    except (OSError, ValueError) as exc:
        # Bind failures (address in use) and invalid option values
        # (--cache-ttl 0, --jobs 0, ...) exit cleanly, no traceback.
        raise SystemExit(f"serve: {exc}") from exc
    return 0


def _cmd_cache(args: argparse.Namespace) -> int:
    from pathlib import Path

    from repro.machine import format_size
    from repro.runtime.artifacts import ArtifactCache

    root = Path(args.cache_dir)
    if not root.is_dir():
        raise SystemExit(f"{root}: not a directory")
    cache = ArtifactCache(root)
    stats = cache.disk_stats()
    rows = [
        (kind, item["entries"], format_size(item["bytes"]))
        for kind, item in sorted(stats["kinds"].items())
    ]
    rows.append(("total", stats["entries"], format_size(stats["bytes"])))
    print(format_table(("kind", "entries", "bytes"), rows))
    if stats["schema_versions"]:
        versions = "  ".join(
            f"{key}={','.join(str(v) for v in values)}"
            for key, values in stats["schema_versions"].items()
        )
        print(f"schema versions: {versions}")
    if stats["corrupt"]:
        print(f"corrupt entries: {stats['corrupt']}")
    if args.clear:
        removed = cache.clear()
        print(f"cleared {removed} entries from {root}")
    return 0


def _cmd_list(args: argparse.Namespace) -> int:
    specs = [get_experiment(name) for name in experiment_names()]
    if args.format == "json":
        import json

        payload = [
            {
                "name": spec.name,
                "title": spec.title,
                "options": list(spec.options),
                "smoke": dict(spec.smoke),
                "deterministic": spec.deterministic,
            }
            for spec in specs
        ]
        print(json.dumps(payload, indent=2))
        return 0
    rows = [
        (
            spec.name,
            spec.title,
            ", ".join(spec.options) if spec.options else "-",
            "no" if not spec.deterministic else "yes",
        )
        for spec in specs
    ]
    print(format_table(("experiment", "artefact", "options", "deterministic"), rows))
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    from pathlib import Path

    from repro.bench import gate, run as bench_run

    if args.tolerance < 0:
        raise SystemExit("--tolerance must be non-negative")
    output = Path(args.output) if args.output else Path.cwd() / "BENCH_core.json"
    payload = bench_run(output, repeat=args.repeat, jobs=args.jobs)
    if args.compare is not None:
        return gate(payload, Path(args.compare), args.tolerance)
    return 0


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    _apply_accel(args)
    _apply_dataplane(args)
    if args.command == "run":
        return _cmd_run(args)
    if args.command == "eval":
        return _cmd_eval(args)
    if args.command == "serve":
        return _cmd_serve(args)
    if args.command == "cache":
        return _cmd_cache(args)
    if args.command == "list":
        return _cmd_list(args)
    return _cmd_bench(args)


if __name__ == "__main__":
    sys.exit(main())
