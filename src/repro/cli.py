"""Command line entry point: ``repro-experiments`` (or ``python -m repro.cli``).

Subcommands:

* ``run [EXPERIMENT ...|all]`` — run experiments through a shared
  :class:`~repro.runtime.session.Session`; ``--jobs N`` shards the work
  across a process pool, ``--cache-dir`` persists traces and profiling
  state between invocations, ``--format`` selects the reporter and
  ``--full``/``--smoke`` apply uniformly to every experiment that declares
  the corresponding options in its registry metadata.
* ``eval [FILE ...]`` — answer declarative :mod:`repro.api` evaluation
  requests from JSON request files (single requests, request lists or
  parameter sweeps); ``--backends`` prints the backend capability matrix
  and the machine-preset table.
* ``optimize [FILE ...]`` — run :mod:`repro.search` design-space searches
  from JSON ``OptimizeRequest`` files; ``--format json`` prints exactly
  the ``POST /v1/optimize`` response body.
* ``serve`` — the long-lived evaluation service (:mod:`repro.service`):
  ``POST /v1/eval``/``/v1/sweep``/``/v1/optimize`` over a warm shared
  session, with ``--port/--jobs/--cache-dir/--max-queue`` and a graceful
  drain on Ctrl-C.
* ``chaos`` — the seeded resilience drill: attack live servers with
  fault plans (worker kills, cache corruption, slow reads) and assert
  the invariants — no hang, no wrong bytes, poison units quarantined,
  graceful serial degradation after the circuit breaker trips.
* ``cache`` — inspect (or ``--clear``) an artifact-cache directory.
* ``list`` — the experiment registry: names, artefacts, declared options.
* ``bench`` — the core hot-path benchmark (see :mod:`repro.bench`).
* ``obs`` — observability tooling: ``report`` prints a self-time
  breakdown of a span JSONL file, ``chrome`` wraps it for Perfetto.

``--trace-out spans.jsonl`` on ``run``/``eval``/``optimize``/``serve``
enables span tracing (parent and ``--jobs`` worker processes append to
the same file; view with ``repro-experiments obs report`` or Perfetto).

Tables go to stdout; diagnostics go to stderr through the structured
:mod:`repro.obs.log` logger (``REPRO_LOG={text,json}``), so redirected
output stays byte-identical between serial and parallel runs.
"""

from __future__ import annotations

import argparse
import os
import sys

from repro.obs.log import get_logger
from repro.runtime import (
    Session,
    experiment_names,
    get_experiment,
    pooled_session,
    render,
    render_many,
    run_experiment,
)
from repro.runtime.reporters import REPORTERS, format_table

_log = get_logger("repro.cli")


def _package_version() -> str:
    """The installed distribution version, or the source tree's fallback."""
    import importlib.metadata

    try:
        return importlib.metadata.version("repro-ispass2012-inorder-model")
    except importlib.metadata.PackageNotFoundError:
        from repro import __version__

        return __version__


def _add_trace_out(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--trace-out", default=None, metavar="FILE",
        help="append tracing spans to FILE as Chrome trace-event JSONL "
             "(parent and worker processes share the file; view with "
             "'obs report' or Perfetto; default: the REPRO_TRACE_OUT "
             "environment variable, else disabled)",
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description=(
            "Reproduce the tables and figures of 'A Mechanistic Performance "
            "Model for Superscalar In-Order Processors' (ISPASS 2012)."
        ),
    )
    parser.add_argument(
        "--version", action="version",
        version=f"%(prog)s {_package_version()}",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    run_parser = subparsers.add_parser(
        "run", help="run one or more experiments (default: all)"
    )
    run_parser.add_argument(
        "experiments",
        nargs="*",
        default=["all"],
        help="experiment names from 'list', or 'all' (the default)",
    )
    run_parser.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="shard work across N worker processes (default: 1, serial)",
    )
    run_parser.add_argument(
        "--format", choices=sorted(REPORTERS), default="text",
        help="output format (default: text)",
    )
    run_parser.add_argument(
        "--cache-dir", default=None, metavar="DIR",
        help="artifact cache directory; traces and profiling state are "
             "reused across runs (default: no on-disk cache)",
    )
    run_parser.add_argument(
        "--full", action="store_true",
        help="use the full 192-point design space in every experiment "
             "that declares the 'full' option (slow)",
    )
    run_parser.add_argument(
        "--smoke", action="store_true",
        help="apply each experiment's registered fast-subset preset",
    )
    run_parser.add_argument(
        "--accel", choices=("auto", "numpy", "python"), default=None,
        metavar="BACKEND",
        help="profiling-kernel backend: numpy, python, or auto "
             "(default: the REPRO_ACCEL environment variable, then auto)",
    )
    run_parser.add_argument(
        "--dataplane", choices=("auto", "shm", "payload"), default=None,
        metavar="PLANE",
        help="trace transport for --jobs workers: shm (zero-copy shared "
             "memory), payload (column bytes), or auto (default: the "
             "REPRO_DATAPLANE environment variable, then auto)",
    )
    _add_trace_out(run_parser)

    eval_parser = subparsers.add_parser(
        "eval",
        help="answer repro.api evaluation requests from JSON request files",
    )
    eval_parser.add_argument(
        "requests", nargs="*", metavar="FILE",
        help="JSON request files ('-' reads stdin); each may hold a single "
             "request, a request list, a sweep, or a "
             "{'requests': [...], 'sweeps': [...]} envelope",
    )
    eval_parser.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="shard the batch across N worker processes (default: 1, serial)",
    )
    eval_parser.add_argument(
        "--format", choices=sorted(REPORTERS), default="text",
        help="output format (default: text)",
    )
    eval_parser.add_argument(
        "--cache-dir", default=None, metavar="DIR",
        help="artifact cache directory shared with 'run' (default: none)",
    )
    eval_parser.add_argument(
        "--backends", action="store_true",
        help="print the backend capability matrix, machine presets and "
             "kernel backends, then exit",
    )
    eval_parser.add_argument(
        "--accel", choices=("auto", "numpy", "python"), default=None,
        metavar="BACKEND",
        help="profiling-kernel backend: numpy, python, or auto "
             "(default: the REPRO_ACCEL environment variable, then auto)",
    )
    eval_parser.add_argument(
        "--dataplane", choices=("auto", "shm", "payload"), default=None,
        metavar="PLANE",
        help="trace transport for --jobs workers: shm, payload, or auto "
             "(default: the REPRO_DATAPLANE environment variable, then auto)",
    )
    _add_trace_out(eval_parser)

    optimize_parser = subparsers.add_parser(
        "optimize",
        help="run design-space searches from JSON OptimizeRequest files "
             "(see repro.search)",
    )
    optimize_parser.add_argument(
        "requests", nargs="*", metavar="FILE",
        help="JSON optimize-request files ('-' reads stdin); each may hold "
             "one request or a list of requests",
    )
    optimize_parser.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="shard each evaluation batch across N worker processes "
             "(default: 1, serial; results are byte-identical either way)",
    )
    optimize_parser.add_argument(
        "--format", choices=("text", "json"), default="text",
        help="output format; json emits exactly the POST /v1/optimize "
             "response body (default: text)",
    )
    optimize_parser.add_argument(
        "--cache-dir", default=None, metavar="DIR",
        help="artifact cache directory shared with 'run'/'eval' "
             "(default: none)",
    )
    optimize_parser.add_argument(
        "--accel", choices=("auto", "numpy", "python"), default=None,
        metavar="BACKEND",
        help="profiling-kernel backend: numpy, python, or auto "
             "(default: the REPRO_ACCEL environment variable, then auto)",
    )
    optimize_parser.add_argument(
        "--dataplane", choices=("auto", "shm", "payload"), default=None,
        metavar="PLANE",
        help="trace transport for --jobs workers: shm, payload, or auto "
             "(default: the REPRO_DATAPLANE environment variable, then auto)",
    )
    _add_trace_out(optimize_parser)

    serve_parser = subparsers.add_parser(
        "serve",
        help="run the evaluation service (POST /v1/eval, /v1/sweep, "
             "/v1/optimize; GET /v1/health, /v1/metrics)",
    )
    serve_parser.add_argument(
        "--host", default="127.0.0.1", metavar="ADDR",
        help="address to bind (default: 127.0.0.1)",
    )
    serve_parser.add_argument(
        "--port", type=int, default=8765, metavar="PORT",
        help="port to bind; 0 picks an ephemeral port (default: 8765)",
    )
    serve_parser.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="evaluation workers; batches also shard across N processes "
             "(default: 1)",
    )
    serve_parser.add_argument(
        "--cache-dir", default=None, metavar="DIR",
        help="artifact cache directory shared with 'run'/'eval'; keeps "
             "traces and profiling state warm across restarts "
             "(default: in-memory only)",
    )
    serve_parser.add_argument(
        "--max-queue", type=int, default=64, metavar="N",
        help="bounded job-queue length; a full queue answers 503 "
             "(default: 64)",
    )
    serve_parser.add_argument(
        "--cache-capacity", type=int, default=1024, metavar="N",
        help="result-cache entries kept in memory (default: 1024)",
    )
    serve_parser.add_argument(
        "--cache-ttl", type=float, default=600.0, metavar="SECONDS",
        help="result-cache entry lifetime (default: 600)",
    )
    serve_parser.add_argument(
        "--cache-max-bytes", default="64MB", metavar="SIZE",
        help="result-cache byte budget, e.g. '64MB' (default: 64MB)",
    )
    serve_parser.add_argument(
        "--accel", choices=("auto", "numpy", "python"), default=None,
        metavar="BACKEND",
        help="profiling-kernel backend: numpy, python, or auto "
             "(default: the REPRO_ACCEL environment variable, then auto); "
             "published in GET /v1/metrics",
    )
    serve_parser.add_argument(
        "--dataplane", choices=("auto", "shm", "payload"), default=None,
        metavar="PLANE",
        help="trace transport for --jobs workers: shm, payload, or auto "
             "(default: the REPRO_DATAPLANE environment variable, then "
             "auto); published in GET /v1/metrics",
    )
    serve_parser.add_argument(
        "--request-timeout", type=float, default=None, metavar="SECONDS",
        help="server-side deadline per evaluation request; past it the "
             "answer is 504 (sweeps include the partial results computed "
             "before the deadline) and the job is cancelled "
             "(default: unbounded)",
    )
    serve_parser.add_argument(
        "--rate-limit", type=float, default=0.0, metavar="RPS",
        help="sustained POST requests/second allowed per client IP; "
             "excess answers 429 with a Retry-After header "
             "(default: 0, unlimited)",
    )
    serve_parser.add_argument(
        "--rate-burst", type=int, default=0, metavar="N",
        help="burst allowance above --rate-limit "
             "(default: derived from the rate)",
    )
    serve_parser.add_argument(
        "--faults", default=None, metavar="PLAN",
        help="install a fault-injection plan: a JSON file path or inline "
             "JSON (see repro.resilience.faults; default: the "
             "REPRO_FAULTS environment variable, else none)",
    )
    _add_trace_out(serve_parser)

    chaos_parser = subparsers.add_parser(
        "chaos",
        help="run the seeded chaos drill against live servers and assert "
             "the resilience invariants (no hang, no wrong bytes, "
             "quarantine, graceful degradation)",
    )
    chaos_parser.add_argument(
        "--seed", type=int, default=None, metavar="S",
        help="drill seed (default: 2012)",
    )
    chaos_parser.add_argument(
        "--jobs", type=int, default=2, metavar="N",
        help="worker processes for the attacked servers (default: 2)",
    )
    chaos_parser.add_argument(
        "--quick", action="store_true",
        help="drill 6 workloads x 2 presets instead of the full "
             "19 x 4 sweep",
    )
    chaos_parser.add_argument(
        "--timeout", type=float, default=120.0, metavar="SECONDS",
        help="per-request client deadline — the no-hang invariant "
             "(default: 120)",
    )
    chaos_parser.add_argument(
        "--json", action="store_true",
        help="emit the full report as JSON instead of text",
    )
    chaos_parser.add_argument(
        "--accel", choices=("auto", "numpy", "python"), default=None,
        metavar="BACKEND",
        help="profiling-kernel backend (default: REPRO_ACCEL, then auto)",
    )

    cache_parser = subparsers.add_parser(
        "cache", help="inspect or clear an artifact-cache directory"
    )
    cache_parser.add_argument(
        "--cache-dir", required=True, metavar="DIR",
        help="the artifact cache directory to inspect",
    )
    cache_parser.add_argument(
        "--clear", action="store_true",
        help="delete every cache entry after printing the stats",
    )

    list_parser = subparsers.add_parser(
        "list", help="list registered experiments and their metadata"
    )
    list_parser.add_argument(
        "--format", choices=("text", "json"), default="text",
        help="output format (default: text)",
    )

    trace_parser = subparsers.add_parser(
        "trace",
        help="long-workload trace tooling: import, inspect, generate and "
             "sample chunked trace stores",
    )
    trace_sub = trace_parser.add_subparsers(dest="trace_command",
                                            required=True)

    trace_import = trace_sub.add_parser(
        "import",
        help="convert a portable trace file into a chunked spill store",
    )
    trace_import.add_argument("file", metavar="FILE",
                              help="portable trace file (#REPRO-TRACE 1)")
    trace_import.add_argument("store", metavar="DIR",
                              help="destination spill-store directory")
    trace_import.add_argument("--chunk-length", type=int, default=65536,
                              metavar="N",
                              help="rows per chunk (default: 65536)")
    trace_import.add_argument("--name", default=None, metavar="NAME",
                              help="workload name recorded in the store "
                                   "(default: the file header's)")

    trace_info = trace_sub.add_parser(
        "info",
        help="describe a spill store directory or portable trace file",
    )
    trace_info.add_argument("path", metavar="PATH",
                            help="spill store directory or portable file")

    trace_synth = trace_sub.add_parser(
        "synth",
        help="generate a (scaled) synthetic workload straight into a "
             "spill store at bounded memory",
    )
    trace_synth.add_argument("store", metavar="DIR",
                             help="destination spill-store directory")
    trace_synth.add_argument("--scale", type=int, default=1, metavar="N",
                             help="multiply the spec's instruction count by "
                                  "N (100-1000 for long-workload runs; "
                                  "default: 1)")
    trace_synth.add_argument("--instructions", type=int, default=20_000,
                             metavar="N",
                             help="base instruction count before --scale "
                                  "(default: 20000)")
    trace_synth.add_argument("--seed", type=int, default=2012, metavar="S",
                             help="generator seed (default: 2012)")
    trace_synth.add_argument("--name", default="synthetic", metavar="NAME",
                             help="workload name (default: synthetic)")
    trace_synth.add_argument("--chunk-length", type=int, default=65536,
                             metavar="N",
                             help="rows per chunk (default: 65536)")

    trace_sample = trace_sub.add_parser(
        "sample",
        help="evaluate a trace store through interval sampling (or exactly, "
             "with --rate 1) and report CPI with error estimates",
    )
    trace_sample.add_argument("store", metavar="DIR",
                              help="spill-store directory to evaluate")
    trace_sample.add_argument("--rate", type=int, default=10, metavar="K",
                              help="profile every K-th chunk (default: 10; "
                                   "1 profiles everything, exactly)")
    trace_sample.add_argument("--warmup", type=int, default=4, metavar="N",
                              help="exactly-profiled census prefix chunks "
                                   "(default: 4)")
    trace_sample.add_argument("--warming", type=int, default=1, metavar="N",
                              help="chunks streamed to warm state before "
                                   "each sampled interval (default: 1)")
    trace_sample.add_argument("--preset", default="paper_default",
                              metavar="NAME",
                              help="machine preset to evaluate "
                                   "(default: paper_default)")
    trace_sample.add_argument("--mlp-window", type=int, default=64,
                              metavar="N",
                              help="MLP coalescing window (default: 64)")
    trace_sample.add_argument("--cache-dir", default=None, metavar="DIR",
                              help="artifact cache directory; per-chunk "
                                   "interval profiles are reused across "
                                   "invocations and sampling rates")
    trace_sample.add_argument("--json", action="store_true",
                              help="emit the full result as JSON")
    trace_sample.add_argument(
        "--accel", choices=("auto", "numpy", "python"), default=None,
        metavar="BACKEND",
        help="profiling-kernel backend (default: REPRO_ACCEL, then auto)",
    )

    bench_parser = subparsers.add_parser(
        "bench", help="run the core hot-path benchmark (writes BENCH_core.json)"
    )
    bench_parser.add_argument("--output", default=None, metavar="PATH",
                              help="where to write the results JSON")
    bench_parser.add_argument("--repeat", type=int, default=3, metavar="N",
                              help="timed repetitions per benchmark "
                                   "(the median is reported; default: 3)")
    bench_parser.add_argument("--jobs", type=int, default=1, metavar="N",
                              help="worker processes for the job-aware "
                                   "benchmarks; recorded in the output")
    bench_parser.add_argument("--compare", default=None, metavar="REFERENCE",
                              help="reference BENCH json; exit non-zero when "
                                   "a shared benchmark's median regresses "
                                   "beyond --tolerance")
    bench_parser.add_argument("--tolerance", type=float, default=25.0,
                              metavar="PCT",
                              help="allowed regression vs --compare, in "
                                   "percent (default: 25)")
    bench_parser.add_argument("--stage-tolerance-ms", type=float, default=50.0,
                              metavar="MS",
                              help="absolute slack added to --compare's "
                                   "per-benchmark gate, in milliseconds: "
                                   "sub-tolerance regressions smaller than "
                                   "this never fail the gate (default: 50)")
    bench_parser.add_argument(
        "--accel", choices=("auto", "numpy", "python"), default=None,
        metavar="BACKEND",
        help="profiling-kernel backend: numpy, python, or auto "
             "(default: the REPRO_ACCEL environment variable, then auto)",
    )
    bench_parser.add_argument(
        "--dataplane", choices=("auto", "shm", "payload"), default=None,
        metavar="PLANE",
        help="trace transport for --jobs workers: shm, payload, or auto "
             "(default: the REPRO_DATAPLANE environment variable, then "
             "auto); recorded in the output",
    )
    _add_trace_out(bench_parser)

    obs_parser = subparsers.add_parser(
        "obs",
        help="observability tooling over span JSONL files "
             "(--trace-out output)",
    )
    obs_sub = obs_parser.add_subparsers(dest="obs_command", required=True)
    obs_report = obs_sub.add_parser(
        "report",
        help="print a per-span-name self-time breakdown of a span file",
    )
    obs_report.add_argument("spans", metavar="FILE",
                            help="span JSONL file written via --trace-out")
    obs_chrome = obs_sub.add_parser(
        "chrome",
        help="wrap a span JSONL file into the {'traceEvents': [...]} JSON "
             "chrome://tracing and Perfetto load directly",
    )
    obs_chrome.add_argument("spans", metavar="FILE",
                            help="span JSONL file written via --trace-out")
    obs_chrome.add_argument("--output", default=None, metavar="PATH",
                            help="destination JSON file (default: stdout)")
    return parser


def _apply_accel(args: argparse.Namespace) -> None:
    """Select the kernel backend before any profiling work starts.

    Also exported through ``REPRO_ACCEL`` so ``--jobs`` worker processes
    (which resolve their backend independently) inherit the choice.
    """
    choice = getattr(args, "accel", None)
    if choice is None:
        return
    import os

    from repro.accel import ACCEL_ENV, set_backend

    try:
        set_backend(choice)
    except ValueError as exc:
        raise SystemExit(f"--accel: {exc}") from exc
    os.environ[ACCEL_ENV] = choice


def _apply_dataplane(args: argparse.Namespace) -> None:
    """Select the trace transport before any sharded work starts.

    Also exported through ``REPRO_DATAPLANE`` so worker processes (which
    resolve the plane independently) inherit the choice.
    """
    choice = getattr(args, "dataplane", None)
    if choice is None:
        return
    import os

    from repro.runtime.dataplane import DATAPLANE_ENV, set_mode

    try:
        set_mode(choice)
    except ValueError as exc:
        raise SystemExit(f"--dataplane: {exc}") from exc
    os.environ[DATAPLANE_ENV] = choice


def _apply_obs(args: argparse.Namespace) -> None:
    """Enable span tracing before any timed work starts.

    ``--trace-out`` is also exported through ``REPRO_TRACE_OUT`` so worker
    processes and spawned tools append to the same file; without the flag
    the environment variable alone can enable tracing.
    """
    from repro.obs import tracing

    path = getattr(args, "trace_out", None)
    if path:
        tracing.configure(path)
        os.environ[tracing.TRACE_ENV] = path
    else:
        tracing.configure_from_env()


def _apply_faults(args: argparse.Namespace) -> None:
    """Install a fault-injection plan before any work starts.

    ``--faults`` takes a JSON file path or inline JSON and is also
    exported through ``REPRO_FAULTS`` so ``--jobs`` worker processes
    inherit the plan; without the flag the environment variable alone
    can install one.
    """
    from repro.resilience import faults

    value = getattr(args, "faults", None)
    if value:
        try:
            if value.lstrip().startswith("{"):
                plan = faults.FaultPlan.from_json(value)
            else:
                plan = faults.FaultPlan.from_file(value)
        except (OSError, ValueError) as exc:
            raise SystemExit(f"--faults: {exc}") from exc
        faults.install(plan)
        os.environ[faults.FAULTS_ENV] = plan.to_json()
    else:
        try:
            faults.install_from_env()
        except (OSError, ValueError) as exc:
            raise SystemExit(f"{faults.FAULTS_ENV}: {exc}") from exc


def _select_experiments(names: list[str]) -> list[str]:
    known = experiment_names()
    if not names or "all" in names:
        return known
    unknown = sorted(set(names) - set(known))
    if unknown:
        raise SystemExit(
            f"unknown experiments: {', '.join(unknown)} "
            f"(known: {', '.join(known)})"
        )
    # Run in registry (paper) order regardless of the order given.
    requested = set(names)
    return [name for name in known if name in requested]


def _cmd_run(args: argparse.Namespace) -> int:
    selected = _select_experiments(args.experiments)
    with pooled_session(args.cache_dir, args.jobs) as session:
        if args.format == "json":
            results = [
                run_experiment(session, name, full=args.full, smoke=args.smoke)
                for name in selected
            ]
            sys.stdout.write(render_many(results, "json") + "\n")
        else:
            # Stream text/csv: each experiment's table appears as soon as it
            # finishes (byte-identical to render_many over the whole batch).
            sections = args.format == "text" or len(selected) > 1
            for index, name in enumerate(selected):
                result = run_experiment(session, name, full=args.full,
                                        smoke=args.smoke)
                if sections:
                    prefix = "\n" if index else ""
                    sys.stdout.write(f"{prefix}=== {name} ===\n")
                sys.stdout.write(render(result, args.format) + "\n")
                sys.stdout.flush()
    _session_report(session)
    return 0


def _session_report(session: Session) -> None:
    summary = session.summary()
    cache = summary.pop("artifact_cache")
    stages = summary.pop("stages")
    fields = dict(summary)
    fields.update({f"cache_{k}": v for k, v in cache.items()})
    fields.update({f"stage_{k}_s": round(v, 3) for k, v in stages.items()})
    _log.info("session summary", **fields)


def _cmd_eval(args: argparse.Namespace) -> int:
    from pathlib import Path

    from repro.api import capability_matrix, evaluate_many, load_requests
    from repro.api.batch import results_table

    if args.backends:
        from repro.machine import MACHINE_PRESETS, format_size

        rows = [
            (name, *("yes" if flag else "no" for flag in (
                capabilities.cpi_stack, capabilities.cycle_accurate,
                capabilities.exact_miss_events, capabilities.power)))
            for name, capabilities in capability_matrix()
        ]
        print(format_table(
            ("backend", "cpi stack", "cycle accurate", "exact misses", "power"),
            rows,
        ))
        preset_rows = []
        for name in MACHINE_PRESETS.names():
            machine = MACHINE_PRESETS.get(name)()
            preset_rows.append((
                name, machine.width, machine.pipeline_stages,
                f"{machine.frequency_mhz} MHz",
                format_size(machine.l1i_size), format_size(machine.l1d_size),
                f"{format_size(machine.l2_size)} "
                f"{machine.l2_associativity}-way",
                machine.branch_predictor,
            ))
        print()
        print(format_table(
            ("preset", "width", "stages", "clock", "L1I", "L1D", "L2",
             "branch predictor"),
            preset_rows,
        ))
        from repro.accel import active_backend, available_backends

        active = active_backend()
        print()
        print(format_table(
            ("kernel backend", "available", "active"),
            [(name, "yes" if usable else "no",
              "yes" if name == active else "no")
             for name, usable in available_backends().items()],
        ))
        return 0
    if not args.requests:
        raise SystemExit("eval needs at least one request file (or --backends)")

    requests = []
    for source in args.requests:
        try:
            text = sys.stdin.read() if source == "-" else Path(source).read_text()
            requests.extend(load_requests(text))
        except (OSError, ValueError, KeyError) as exc:
            raise SystemExit(f"{source}: {exc}") from exc

    with pooled_session(args.cache_dir, args.jobs) as session:
        try:
            results = evaluate_many(requests, session=session)
        except (ValueError, KeyError, TypeError) as exc:
            # Unresolvable names and malformed values (backend, preset,
            # workload, override field, size string) are caught by the batch
            # layer's upfront validation — surface them as a clean message,
            # not a traceback.
            raise SystemExit(str(exc)) from exc
        sys.stdout.write(render(results_table(results), args.format) + "\n")
    _session_report(session)
    return 0


def _cmd_optimize(args: argparse.Namespace) -> int:
    import json
    from pathlib import Path

    from repro.search.optimize import OptimizeRequest, optimize

    if not args.requests:
        raise SystemExit("optimize needs at least one request file")
    requests = []
    for source in args.requests:
        try:
            text = sys.stdin.read() if source == "-" else Path(source).read_text()
            payload = json.loads(text)
            items = payload if isinstance(payload, list) else [payload]
            requests.extend(OptimizeRequest.parse(item) for item in items)
        except (OSError, ValueError, KeyError, TypeError) as exc:
            raise SystemExit(f"{source}: {exc}") from exc

    with pooled_session(args.cache_dir, args.jobs) as session:
        results = []
        for request in requests:
            try:
                results.append(optimize(request, session=session))
            except (ValueError, KeyError, TypeError) as exc:
                raise SystemExit(str(exc)) from exc
        if args.format == "json":
            # One request prints exactly OptimizeResult.to_json() — the
            # same bytes POST /v1/optimize answers for the same request.
            if len(results) == 1:
                sys.stdout.write(results[0].to_json() + "\n")
            else:
                body = json.dumps([result.to_dict() for result in results],
                                  indent=2)
                sys.stdout.write(body + "\n")
        else:
            for index, result in enumerate(results):
                if index:
                    sys.stdout.write("\n")
                _render_optimize_text(result)
    _session_report(session)
    return 0


def _render_optimize_text(result) -> None:
    request = result.request
    objectives = [str(objective) for objective in request.objectives]
    print(f"search: {request.workload.name} [{request.workload.flags}] "
          f"over {result.cardinality:,} points — strategy={request.strategy} "
          f"budget={request.budget} seed={request.seed}")
    print(f"evaluated {result.evaluations} points "
          f"({result.infeasible_skipped} pruned by machine constraints); "
          f"front size {len(result.front)}")
    rows = [
        (("*" if result.best is not None
          and entry["index"] == result.best["index"] else ""),
         entry["index"], entry["machine"],
         *(f"{entry['objectives'][name]:.6g}" for name in objectives))
        for entry in result.front
    ]
    print(format_table(("", "index", "machine", *objectives), rows))
    if result.best is not None:
        print(f"best: {result.best['machine']} "
              f"(found after {result.best_found_at_evaluation} evaluations)")


def _cmd_serve(args: argparse.Namespace) -> int:
    import asyncio

    from repro.machine import parse_size
    from repro.service.server import ServiceConfig, serve

    try:
        cache_max_bytes = parse_size(args.cache_max_bytes)
    except (ValueError, TypeError) as exc:
        raise SystemExit(f"--cache-max-bytes: {exc}") from exc
    config = ServiceConfig(
        host=args.host, port=args.port, jobs=args.jobs,
        max_queue=args.max_queue, cache_dir=args.cache_dir,
        cache_capacity=args.cache_capacity, cache_ttl=args.cache_ttl,
        cache_max_bytes=cache_max_bytes,
        request_timeout=args.request_timeout,
        rate_limit=args.rate_limit, rate_burst=args.rate_burst,
    )

    def announce(server) -> None:
        _log.info(
            "repro.service listening — Ctrl-C drains and stops",
            url=f"http://{config.host}:{server.port}",
            jobs=config.jobs, max_queue=config.max_queue,
            cache_dir=config.cache_dir or "<memory>",
        )

    try:
        asyncio.run(serve(config, ready=announce))
    except KeyboardInterrupt:
        _log.info("repro.service drained and stopped")
    except (OSError, ValueError) as exc:
        # Bind failures (address in use) and invalid option values
        # (--cache-ttl 0, --jobs 0, ...) exit cleanly, no traceback.
        raise SystemExit(f"serve: {exc}") from exc
    return 0


def _cmd_chaos(args: argparse.Namespace) -> int:
    from repro.resilience.chaos import DEFAULT_SEED, run_chaos

    workloads = presets = None
    if args.quick:
        from repro.machine import MACHINE_PRESETS
        from repro.workloads.registry import suite_names

        workloads = suite_names("mibench")[:6]
        presets = MACHINE_PRESETS.names()[:2]
    report = run_chaos(
        seed=args.seed if args.seed is not None else DEFAULT_SEED,
        jobs=args.jobs, workloads=workloads, presets=presets,
        timeout=args.timeout,
    )
    if args.json:
        import json

        print(json.dumps(report.as_dict(), indent=2))
    else:
        print(report.render())
    return 0 if report.passed else 1


def _cmd_cache(args: argparse.Namespace) -> int:
    from pathlib import Path

    from repro.machine import format_size
    from repro.runtime.artifacts import ArtifactCache

    root = Path(args.cache_dir)
    if not root.is_dir():
        raise SystemExit(f"{root}: not a directory")
    cache = ArtifactCache(root)
    stats = cache.disk_stats()
    rows = [
        (kind, item["entries"], format_size(item["bytes"]))
        for kind, item in sorted(stats["kinds"].items())
    ]
    rows.append(("total", stats["entries"], format_size(stats["bytes"])))
    print(format_table(("kind", "entries", "bytes"), rows))
    if stats["schema_versions"]:
        versions = "  ".join(
            f"{key}={','.join(str(v) for v in values)}"
            for key, values in stats["schema_versions"].items()
        )
        print(f"schema versions: {versions}")
    if stats["corrupt"]:
        print(f"corrupt entries: {stats['corrupt']}")
    if args.clear:
        removed = cache.clear()
        print(f"cleared {removed} entries from {root}")
    return 0


def _cmd_list(args: argparse.Namespace) -> int:
    specs = [get_experiment(name) for name in experiment_names()]
    if args.format == "json":
        import json

        payload = [
            {
                "name": spec.name,
                "title": spec.title,
                "options": list(spec.options),
                "smoke": dict(spec.smoke),
                "deterministic": spec.deterministic,
            }
            for spec in specs
        ]
        print(json.dumps(payload, indent=2))
        return 0
    rows = [
        (
            spec.name,
            spec.title,
            ", ".join(spec.options) if spec.options else "-",
            "no" if not spec.deterministic else "yes",
        )
        for spec in specs
    ]
    print(format_table(("experiment", "artefact", "options", "deterministic"), rows))
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    from pathlib import Path

    if args.trace_command == "import":
        from repro.trace.store import import_portable

        try:
            chunked = import_portable(args.file, args.store,
                                      chunk_length=args.chunk_length,
                                      name=args.name)
        except (OSError, ValueError, NotImplementedError) as exc:
            raise SystemExit(f"import: {exc}") from exc
        print(f"imported {len(chunked):,} instructions into {args.store} "
              f"({chunked.num_chunks} chunks of {chunked.chunk_length}, "
              f"{len(chunked.statics)} statics)")
        return 0

    if args.trace_command == "info":
        import json

        from repro.trace.store import portable_info, store_info

        path = Path(args.path)
        try:
            if path.is_dir():
                info = store_info(path)
                info["kind"] = "store"
            else:
                info = portable_info(path)
                info["kind"] = "portable"
        except (OSError, ValueError, NotImplementedError, KeyError) as exc:
            raise SystemExit(f"info: {path}: {exc}") from exc
        print(json.dumps(info, indent=2, sort_keys=True))
        return 0

    if args.trace_command == "synth":
        from repro.workloads.synthetic import (
            SyntheticWorkloadSpec,
            generate_synthetic_store,
        )

        try:
            spec = SyntheticWorkloadSpec(name=args.name,
                                         instructions=args.instructions,
                                         seed=args.seed)
            chunked = generate_synthetic_store(args.store, spec,
                                               scale=args.scale,
                                               chunk_length=args.chunk_length)
        except (OSError, ValueError) as exc:
            raise SystemExit(f"synth: {exc}") from exc
        print(f"generated {len(chunked):,} instructions "
              f"({args.instructions} x{args.scale}) into {args.store} "
              f"({chunked.num_chunks} chunks of {chunked.chunk_length})")
        return 0

    # sample
    from repro.machine import machine_from_spec
    from repro.trace.store import TraceStore

    if args.rate < 1:
        raise SystemExit("--rate must be at least 1")
    try:
        machine = machine_from_spec(args.preset)
    except KeyError as exc:
        raise SystemExit(f"--preset: {exc.args[0]}") from exc
    try:
        chunked = TraceStore.open(args.store)
    except (OSError, ValueError, NotImplementedError) as exc:
        raise SystemExit(f"sample: {args.store}: {exc}") from exc

    if args.rate == 1:
        # Exact: stream every chunk once through the resumable engine.
        from repro.core.model import InOrderMechanisticModel
        from repro.profiler.streaming import StreamingEngine

        engine = StreamingEngine.for_chunked(chunked)
        misses = engine.miss_profile(machine, args.mlp_window)
        program = engine.program_profile()
        result = InOrderMechanisticModel(machine).predict(program, misses)
        payload = {
            "store": str(args.store),
            "name": chunked.name,
            "machine": machine.name,
            "instructions": len(chunked),
            "exact": True,
            "cycles": result.cycles,
            "cpi": result.cpi,
            "seconds": result.execution_time_seconds,
            "misses": {metric: getattr(misses, metric)
                       for metric in _SAMPLE_METRICS},
        }
        if args.json:
            import json

            print(json.dumps(payload, indent=2, sort_keys=True))
        else:
            print(f"{chunked.name}: {len(chunked):,} instructions, "
                  f"{chunked.num_chunks} chunks (exact)")
            print(f"cpi={result.cpi:.4f}  cycles={result.cycles:,.0f}  "
                  f"seconds={result.execution_time_seconds:.6f}")
        return 0

    session = Session(cache_dir=args.cache_dir)
    evaluation = session.sample_evaluate(
        chunked, machine, rate=args.rate, warmup=args.warmup,
        warming=args.warming, mlp_window=args.mlp_window,
    )
    bar = evaluation.est_rel_error.get("cpi", 0.0)
    payload = {
        "store": str(args.store),
        "name": chunked.name,
        "machine": machine.name,
        "instructions": evaluation.instructions,
        "exact": evaluation.plan.exact,
        "cycles": evaluation.cycles,
        "cpi": evaluation.cpi,
        "seconds": evaluation.seconds,
        "misses": {metric: getattr(evaluation.misses, metric)
                   for metric in _SAMPLE_METRICS},
        "sampling": evaluation.to_dict(),
        "interval_cache": {"hits": evaluation.cache_hits,
                           "misses": evaluation.cache_misses},
    }
    if args.json:
        import json

        print(json.dumps(payload, indent=2, sort_keys=True))
        return 0
    plan = evaluation.plan
    print(f"{chunked.name}: {evaluation.instructions:,} instructions, "
          f"{plan.num_chunks} chunks; profiled "
          f"{plan.intervals_profiled} ({plan.fraction:.1%}) at rate "
          f"{plan.rate} (warmup={plan.warmup}, warming={evaluation.warming})")
    print(f"cpi={evaluation.cpi:.4f} +-{bar:.2%}  "
          f"cycles={evaluation.cycles:,.0f}  "
          f"seconds={evaluation.seconds:.6f}")
    errors = "  ".join(
        f"{metric}={getattr(evaluation.misses, metric):,.0f}"
        f"(+-{evaluation.est_rel_error.get(metric, 0.0):.1%})"
        for metric in _SAMPLE_METRICS
    )
    print(f"misses: {errors}")
    if evaluation.cache_hits or evaluation.cache_misses:
        print(f"interval cache: {evaluation.cache_hits} hits, "
              f"{evaluation.cache_misses} built")
    return 0


#: Miss metrics the ``trace sample`` reports, in display order.
_SAMPLE_METRICS = (
    "l1i_misses", "l1d_misses", "il2_misses", "dl2_misses",
    "itlb_misses", "dtlb_misses", "mispredictions",
)


def _cmd_bench(args: argparse.Namespace) -> int:
    from pathlib import Path

    from repro.bench import gate, run as bench_run

    if args.tolerance < 0:
        raise SystemExit("--tolerance must be non-negative")
    if args.stage_tolerance_ms < 0:
        raise SystemExit("--stage-tolerance-ms must be non-negative")
    output = Path(args.output) if args.output else Path.cwd() / "BENCH_core.json"
    payload = bench_run(output, repeat=args.repeat, jobs=args.jobs,
                        stage_tolerance_ms=args.stage_tolerance_ms)
    if args.compare is not None:
        return gate(payload, Path(args.compare), args.tolerance,
                    args.stage_tolerance_ms)
    return 0


def _cmd_obs(args: argparse.Namespace) -> int:
    import json

    from repro.obs.report import load_events, render_report, to_chrome_trace

    try:
        events = load_events(args.spans)
    except OSError as exc:
        raise SystemExit(f"obs: {exc}") from exc
    if args.obs_command == "report":
        sys.stdout.write(render_report(events) + "\n")
        return 0
    document = json.dumps(to_chrome_trace(events), indent=2)
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(document + "\n")
        _log.info("chrome trace written", path=args.output,
                  events=len(events))
    else:
        sys.stdout.write(document + "\n")
    return 0


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    _apply_accel(args)
    _apply_dataplane(args)
    _apply_obs(args)
    _apply_faults(args)
    try:
        if args.command == "run":
            return _cmd_run(args)
        if args.command == "eval":
            return _cmd_eval(args)
        if args.command == "optimize":
            return _cmd_optimize(args)
        if args.command == "serve":
            return _cmd_serve(args)
        if args.command == "chaos":
            return _cmd_chaos(args)
        if args.command == "cache":
            return _cmd_cache(args)
        if args.command == "list":
            return _cmd_list(args)
        if args.command == "trace":
            return _cmd_trace(args)
        if args.command == "obs":
            return _cmd_obs(args)
        return _cmd_bench(args)
    except BrokenPipeError:
        # Downstream closed the pipe (`... | head`): exit quietly, and hand
        # stdout a dead descriptor so interpreter shutdown's implicit flush
        # cannot raise the same error again.
        devnull = os.open(os.devnull, os.O_WRONLY)
        os.dup2(devnull, sys.stdout.fileno())
        return 0


if __name__ == "__main__":
    sys.exit(main())
