"""Command line entry point: ``repro-experiments`` (or ``python -m repro.cli``).

Subcommands:

* ``run [EXPERIMENT ...|all]`` — run experiments through a shared
  :class:`~repro.runtime.session.Session`; ``--jobs N`` shards the work
  across a process pool, ``--cache-dir`` persists traces and profiling
  state between invocations, ``--format`` selects the reporter and
  ``--full``/``--smoke`` apply uniformly to every experiment that declares
  the corresponding options in its registry metadata.
* ``eval [FILE ...]`` — answer declarative :mod:`repro.api` evaluation
  requests from JSON request files (single requests, request lists or
  parameter sweeps); ``--backends`` prints the backend capability matrix.
* ``list`` — the experiment registry: names, artefacts, declared options.
* ``bench`` — the core hot-path benchmark (see :mod:`repro.bench`).

Tables go to stdout; the end-of-run session report goes to stderr, so
redirected output stays byte-identical between serial and parallel runs.
"""

from __future__ import annotations

import argparse
import sys

from repro.runtime import (
    Session,
    experiment_names,
    get_experiment,
    pooled_session,
    render,
    render_many,
    run_experiment,
)
from repro.runtime.reporters import REPORTERS, format_table


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description=(
            "Reproduce the tables and figures of 'A Mechanistic Performance "
            "Model for Superscalar In-Order Processors' (ISPASS 2012)."
        ),
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    run_parser = subparsers.add_parser(
        "run", help="run one or more experiments (default: all)"
    )
    run_parser.add_argument(
        "experiments",
        nargs="*",
        default=["all"],
        help="experiment names from 'list', or 'all' (the default)",
    )
    run_parser.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="shard work across N worker processes (default: 1, serial)",
    )
    run_parser.add_argument(
        "--format", choices=sorted(REPORTERS), default="text",
        help="output format (default: text)",
    )
    run_parser.add_argument(
        "--cache-dir", default=None, metavar="DIR",
        help="artifact cache directory; traces and profiling state are "
             "reused across runs (default: no on-disk cache)",
    )
    run_parser.add_argument(
        "--full", action="store_true",
        help="use the full 192-point design space in every experiment "
             "that declares the 'full' option (slow)",
    )
    run_parser.add_argument(
        "--smoke", action="store_true",
        help="apply each experiment's registered fast-subset preset",
    )

    eval_parser = subparsers.add_parser(
        "eval",
        help="answer repro.api evaluation requests from JSON request files",
    )
    eval_parser.add_argument(
        "requests", nargs="*", metavar="FILE",
        help="JSON request files ('-' reads stdin); each may hold a single "
             "request, a request list, a sweep, or a "
             "{'requests': [...], 'sweeps': [...]} envelope",
    )
    eval_parser.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="shard the batch across N worker processes (default: 1, serial)",
    )
    eval_parser.add_argument(
        "--format", choices=sorted(REPORTERS), default="text",
        help="output format (default: text)",
    )
    eval_parser.add_argument(
        "--cache-dir", default=None, metavar="DIR",
        help="artifact cache directory shared with 'run' (default: none)",
    )
    eval_parser.add_argument(
        "--backends", action="store_true",
        help="print the backend capability matrix and exit",
    )

    list_parser = subparsers.add_parser(
        "list", help="list registered experiments and their metadata"
    )
    list_parser.add_argument(
        "--format", choices=("text", "json"), default="text",
        help="output format (default: text)",
    )

    bench_parser = subparsers.add_parser(
        "bench", help="run the core hot-path benchmark (writes BENCH_core.json)"
    )
    bench_parser.add_argument("--output", default=None, metavar="PATH",
                              help="where to write the results JSON")
    bench_parser.add_argument("--repeat", type=int, default=3, metavar="N",
                              help="timed repetitions per benchmark "
                                   "(the median is reported; default: 3)")
    bench_parser.add_argument("--jobs", type=int, default=1, metavar="N",
                              help="worker processes for the job-aware "
                                   "benchmarks; recorded in the output")
    return parser


def _select_experiments(names: list[str]) -> list[str]:
    known = experiment_names()
    if not names or "all" in names:
        return known
    unknown = sorted(set(names) - set(known))
    if unknown:
        raise SystemExit(
            f"unknown experiments: {', '.join(unknown)} "
            f"(known: {', '.join(known)})"
        )
    # Run in registry (paper) order regardless of the order given.
    requested = set(names)
    return [name for name in known if name in requested]


def _cmd_run(args: argparse.Namespace) -> int:
    selected = _select_experiments(args.experiments)
    with pooled_session(args.cache_dir, args.jobs) as session:
        if args.format == "json":
            results = [
                run_experiment(session, name, full=args.full, smoke=args.smoke)
                for name in selected
            ]
            sys.stdout.write(render_many(results, "json") + "\n")
        else:
            # Stream text/csv: each experiment's table appears as soon as it
            # finishes (byte-identical to render_many over the whole batch).
            sections = args.format == "text" or len(selected) > 1
            for index, name in enumerate(selected):
                result = run_experiment(session, name, full=args.full,
                                        smoke=args.smoke)
                if sections:
                    prefix = "\n" if index else ""
                    sys.stdout.write(f"{prefix}=== {name} ===\n")
                sys.stdout.write(render(result, args.format) + "\n")
                sys.stdout.flush()
    _session_report(session)
    return 0


def _session_report(session: Session) -> None:
    summary = session.summary()
    cache = summary.pop("artifact_cache")
    print(
        "session: "
        + "  ".join(f"{key}={value}" for key, value in summary.items())
        + "  cache(" + " ".join(f"{k}={v}" for k, v in cache.items()) + ")",
        file=sys.stderr,
    )


def _cmd_eval(args: argparse.Namespace) -> int:
    from pathlib import Path

    from repro.api import capability_matrix, evaluate_many, load_requests
    from repro.api.batch import results_table

    if args.backends:
        rows = [
            (name, *("yes" if flag else "no" for flag in (
                capabilities.cpi_stack, capabilities.cycle_accurate,
                capabilities.exact_miss_events, capabilities.power)))
            for name, capabilities in capability_matrix()
        ]
        print(format_table(
            ("backend", "cpi stack", "cycle accurate", "exact misses", "power"),
            rows,
        ))
        return 0
    if not args.requests:
        raise SystemExit("eval needs at least one request file (or --backends)")

    requests = []
    for source in args.requests:
        try:
            text = sys.stdin.read() if source == "-" else Path(source).read_text()
            requests.extend(load_requests(text))
        except (OSError, ValueError, KeyError) as exc:
            raise SystemExit(f"{source}: {exc}") from exc

    with pooled_session(args.cache_dir, args.jobs) as session:
        try:
            results = evaluate_many(requests, session=session)
        except (ValueError, KeyError, TypeError) as exc:
            # Unresolvable names and malformed values (backend, preset,
            # workload, override field, size string) are caught by the batch
            # layer's upfront validation — surface them as a clean message,
            # not a traceback.
            raise SystemExit(str(exc)) from exc
        sys.stdout.write(render(results_table(results), args.format) + "\n")
    _session_report(session)
    return 0


def _cmd_list(args: argparse.Namespace) -> int:
    specs = [get_experiment(name) for name in experiment_names()]
    if args.format == "json":
        import json

        payload = [
            {
                "name": spec.name,
                "title": spec.title,
                "options": list(spec.options),
                "smoke": dict(spec.smoke),
                "deterministic": spec.deterministic,
            }
            for spec in specs
        ]
        print(json.dumps(payload, indent=2))
        return 0
    rows = [
        (
            spec.name,
            spec.title,
            ", ".join(spec.options) if spec.options else "-",
            "no" if not spec.deterministic else "yes",
        )
        for spec in specs
    ]
    print(format_table(("experiment", "artefact", "options", "deterministic"), rows))
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    from pathlib import Path

    from repro.bench import run as bench_run

    output = Path(args.output) if args.output else Path.cwd() / "BENCH_core.json"
    bench_run(output, repeat=args.repeat, jobs=args.jobs)
    return 0


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "run":
        return _cmd_run(args)
    if args.command == "eval":
        return _cmd_eval(args)
    if args.command == "list":
        return _cmd_list(args)
    return _cmd_bench(args)


if __name__ == "__main__":
    sys.exit(main())
