"""Command line entry point: ``repro-experiments`` (or ``python -m repro.cli``).

Runs one or all of the paper's experiments and prints their tables.
"""

from __future__ import annotations

import argparse
import sys

from repro.experiments import ALL_EXPERIMENTS


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description=(
            "Reproduce the tables and figures of 'A Mechanistic Performance "
            "Model for Superscalar In-Order Processors' (ISPASS 2012)."
        ),
    )
    parser.add_argument(
        "experiment",
        nargs="?",
        default="all",
        choices=sorted(ALL_EXPERIMENTS) + ["all"],
        help="which experiment to run (default: all)",
    )
    parser.add_argument(
        "--full",
        action="store_true",
        help=(
            "use the full 192-point design space for figure5/figure9 "
            "(slow: every point needs a detailed simulation)"
        ),
    )
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    selected = (
        sorted(ALL_EXPERIMENTS) if args.experiment == "all" else [args.experiment]
    )
    for name in selected:
        module = ALL_EXPERIMENTS[name]
        print(f"\n=== {name} ===")
        if name in ("figure5", "figure9"):
            module.main(full=args.full)
        else:
            module.main()
    return 0


if __name__ == "__main__":
    sys.exit(main())
