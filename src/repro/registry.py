"""Generic string-addressable component registry.

Every pluggable family in the library — evaluation backends, branch
predictors, workload builders, machine presets, output reporters — shares
this one registration pattern: a module-level :class:`Registry` plus a
``register()`` decorator.  Third-party code extends a family without
editing the defining module::

    from repro.branch.predictors import register_predictor

    @register_predictor("perceptron_4kb")
    def build_perceptron():
        return PerceptronPredictor(budget_bits=4 * 1024 * 8)

Entries are addressed by a canonical name plus optional aliases; lookups
fail with an error that lists every known name, so a typo is a one-read
diagnosis rather than a stack trace into the consuming subsystem.
"""

from __future__ import annotations

from typing import Any, Callable, Iterator, Mapping


class RegistryError(KeyError):
    """Lookup or registration failure; ``str(exc)`` is the full message."""

    def __str__(self) -> str:  # KeyError quotes its payload; keep it readable
        return self.args[0]


class Registry:
    """A named family of components addressed by string.

    ``kind`` names the family in error messages ("evaluation backend",
    "machine preset", ...).  Values are arbitrary objects — classes,
    instances, factory callables — the consuming module decides.
    """

    def __init__(self, kind: str):
        self.kind = kind
        self._entries: dict[str, Any] = {}
        self._aliases: dict[str, str] = {}
        self._metadata: dict[str, dict] = {}

    # ------------------------------------------------------------------
    # Registration.
    # ------------------------------------------------------------------
    def register(self, name: str, *, aliases: tuple[str, ...] = (),
                 overwrite: bool = False, **metadata) -> Callable:
        """Decorator registering the decorated value under ``name``.

        ``aliases`` are alternative lookup names resolving to the same entry;
        ``metadata`` keyword pairs are stored verbatim and retrievable via
        :meth:`metadata` (used e.g. to tag workloads with their suite).
        """

        def adder(value):
            taken = [
                candidate for candidate in (name, *aliases)
                if not overwrite and (candidate in self._entries
                                      or candidate in self._aliases)
            ]
            if taken:
                raise RegistryError(
                    f"{self.kind} {taken[0]!r} is already registered"
                )
            self._entries[name] = value
            self._metadata[name] = dict(metadata)
            for alias in aliases:
                self._aliases[alias] = name
            return value

        return adder

    def unregister(self, name: str) -> None:
        """Remove an entry and its aliases (plugin teardown, tests)."""
        canonical = self.canonical(name)
        del self._entries[canonical]
        del self._metadata[canonical]
        self._aliases = {
            alias: target for alias, target in self._aliases.items()
            if target != canonical
        }

    # ------------------------------------------------------------------
    # Lookup.
    # ------------------------------------------------------------------
    def canonical(self, name: str) -> str:
        """Resolve ``name`` (or an alias) to the canonical entry name."""
        if name in self._entries:
            return name
        if name in self._aliases:
            return self._aliases[name]
        known = ", ".join(sorted(self._entries)) or "<none>"
        raise RegistryError(
            f"unknown {self.kind} {name!r}; known: {known}"
        )

    def get(self, name: str) -> Any:
        return self._entries[self.canonical(name)]

    def metadata(self, name: str) -> Mapping[str, Any]:
        return self._metadata[self.canonical(name)]

    def names(self, **criteria) -> list[str]:
        """Sorted canonical names, optionally filtered by metadata equality."""
        return sorted(
            name for name in self._entries
            if all(self._metadata[name].get(key) == value
                   for key, value in criteria.items())
        )

    def items(self) -> list[tuple[str, Any]]:
        return [(name, self._entries[name]) for name in self.names()]

    def __contains__(self, name: object) -> bool:
        return name in self._entries or name in self._aliases

    def __iter__(self) -> Iterator[str]:
        return iter(self._entries)

    def __len__(self) -> int:
        return len(self._entries)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Registry({self.kind!r}, {sorted(self._entries)})"
