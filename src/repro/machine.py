"""Machine (microarchitecture) configuration shared by models and simulators.

A :class:`MachineConfig` captures every machine parameter the mechanistic
model needs (Table 1 of the paper) plus the parameters the detailed
simulators and the power model need: superscalar width, front-end pipeline
depth, clock frequency, functional-unit latencies, the cache/TLB hierarchy
and the branch predictor.

The same object drives the analytical model, the cycle-accurate in-order
simulator and the power model, which guarantees that a validation experiment
compares apples to apples.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field, fields, replace
from typing import Mapping

from repro.isa.opcodes import OpClass
from repro.memory.cache import CacheConfig
from repro.memory.hierarchy import MemoryHierarchyConfig
from repro.memory.tlb import TLBConfig
from repro.registry import Registry

#: Total pipeline stages = front-end depth + execute + memory + write-back.
BACKEND_STAGES = 3


@dataclass(frozen=True)
class MachineConfig:
    """A superscalar in-order processor configuration.

    Parameters mirror Table 2 of the paper: the default is a 4-wide, 9-stage,
    1 GHz core with 32KB L1 caches, a 512KB 8-way L2 (10 ns) and a 1KB
    global-history branch predictor.
    """

    width: int = 4
    pipeline_stages: int = 9
    frequency_mhz: int = 1000
    mul_latency: int = 4
    div_latency: int = 20
    l1i_size: int = 32 * 1024
    l1i_associativity: int = 4
    l1d_size: int = 32 * 1024
    l1d_associativity: int = 4
    l2_size: int = 512 * 1024
    l2_associativity: int = 8
    line_size: int = 64
    l1_hit_cycles: int = 1
    l2_ns: float = 10.0
    memory_ns: float = 80.0
    tlb_entries: int = 32
    page_size: int = 4096
    tlb_miss_ns: float = 30.0
    branch_predictor: str = "global_1kb"
    #: Display label only: excluded from equality and hashing, so two
    #: identical geometries with different labels share every profile
    #: memo, engine pass and artifact-cache key.
    name: str = field(default="", compare=False)

    def __post_init__(self) -> None:
        if self.width < 1:
            raise ValueError("width must be at least 1")
        if self.pipeline_stages < BACKEND_STAGES + 2:
            raise ValueError(
                f"pipeline needs at least {BACKEND_STAGES + 2} stages "
                "(fetch, decode, execute, memory, write-back)"
            )
        if self.frequency_mhz <= 0:
            raise ValueError("frequency must be positive")
        if self.mul_latency < 1 or self.div_latency < 1:
            raise ValueError("functional-unit latencies must be at least 1 cycle")

    # ------------------------------------------------------------------
    # Derived quantities.
    # ------------------------------------------------------------------
    @property
    def frontend_depth(self) -> int:
        """Number of front-end (fetch/decode) stages — the D of Eq. 4."""
        return self.pipeline_stages - BACKEND_STAGES

    @property
    def cycle_ns(self) -> float:
        return 1000.0 / self.frequency_mhz

    def _cycles(self, nanoseconds: float) -> int:
        return max(1, round(nanoseconds / self.cycle_ns))

    @property
    def l2_hit_cycles(self) -> int:
        return self._cycles(self.l2_ns)

    @property
    def memory_cycles(self) -> int:
        return self._cycles(self.memory_ns)

    @property
    def tlb_miss_cycles(self) -> int:
        return self._cycles(self.tlb_miss_ns)

    def execute_latency(self, op_class: OpClass) -> int:
        """Execute-stage occupancy in cycles for an instruction class."""
        if op_class is OpClass.INT_MUL:
            return self.mul_latency
        if op_class is OpClass.INT_DIV:
            return self.div_latency
        return 1

    def memory_hierarchy_config(self) -> MemoryHierarchyConfig:
        """Build the cache/TLB configuration implied by this machine."""
        return MemoryHierarchyConfig(
            l1i=CacheConfig(self.l1i_size, self.l1i_associativity, self.line_size, name="l1i"),
            l1d=CacheConfig(self.l1d_size, self.l1d_associativity, self.line_size, name="l1d"),
            l2=CacheConfig(self.l2_size, self.l2_associativity, self.line_size, name="l2"),
            itlb=TLBConfig(self.tlb_entries, self.page_size, name="itlb"),
            dtlb=TLBConfig(self.tlb_entries, self.page_size, name="dtlb"),
            l1_hit_cycles=self.l1_hit_cycles,
            l2_hit_cycles=self.l2_hit_cycles,
            memory_cycles=self.memory_cycles,
            tlb_miss_cycles=self.tlb_miss_cycles,
        )

    def with_(self, **overrides) -> "MachineConfig":
        """Return a copy with some fields replaced (convenience for sweeps)."""
        return replace(self, **overrides)

    def describe(self) -> str:
        return (
            f"{self.width}-wide, {self.pipeline_stages}-stage, "
            f"{self.frequency_mhz} MHz, L2 {format_size(self.l2_size)} "
            f"{self.l2_associativity}-way, bpred {self.branch_predictor}"
        )


#: The paper's default configuration (Table 2, middle column).
DEFAULT_MACHINE = MachineConfig(name="default")


def area_proxy(machine: MachineConfig) -> float:
    """A crude silicon-area proxy in KB-equivalents, for search objectives.

    SRAM estate dominates small in-order cores, so the proxy is the cache
    estate in KB plus a per-slot and per-stage core term.  It is *not* a
    calibrated area model — it exists so design-space searches can trade
    performance against a monotonic cost axis (``area_proxy`` grows with
    every parameter a designer pays area for).
    """
    return ((machine.l1i_size + machine.l1d_size + machine.l2_size) / 1024.0
            + 4.0 * machine.width + float(machine.pipeline_stages))


# ----------------------------------------------------------------------
# Size-string parsing ("1MB" -> 1048576).
# ----------------------------------------------------------------------
_SIZE_UNITS = {
    "": 1, "b": 1,
    "k": 1024, "kb": 1024, "kib": 1024,
    "m": 1024 ** 2, "mb": 1024 ** 2, "mib": 1024 ** 2,
    "g": 1024 ** 3, "gb": 1024 ** 3, "gib": 1024 ** 3,
}

_SIZE_PATTERN = re.compile(r"^\s*(\d+(?:\.\d+)?)\s*([a-zA-Z]*)\s*$")

#: MachineConfig fields whose values are byte counts and therefore accept
#: size strings wherever a machine spec is parsed.
SIZE_FIELDS = frozenset({"l1i_size", "l1d_size", "l2_size", "line_size", "page_size"})


def parse_size(value: int | str) -> int:
    """Parse a byte count: an int passes through, a string may carry a unit.

    Accepted units (case-insensitive, binary multiples): ``B``, ``KB``/``KiB``/
    ``K``, ``MB``/``MiB``/``M``, ``GB``/``GiB``/``G``.  ``"512KB"`` -> 524288,
    ``"1MB"`` -> 1048576, ``"0.5MB"`` -> 524288.
    """
    if isinstance(value, bool):
        raise TypeError(f"size must be an int or a string, got {value!r}")
    if isinstance(value, int):
        return value
    if not isinstance(value, str):
        raise TypeError(f"size must be an int or a string, got {value!r}")
    match = _SIZE_PATTERN.match(value)
    if not match:
        raise ValueError(f"malformed size string {value!r} (expected e.g. '512KB', '1MB')")
    number, unit = match.groups()
    try:
        multiplier = _SIZE_UNITS[unit.lower()]
    except KeyError:
        known = ", ".join(sorted(unit for unit in _SIZE_UNITS if unit))
        raise ValueError(f"unknown size unit {unit!r} in {value!r}; known units: {known}") from None
    total = float(number) * multiplier
    if total != int(total):
        raise ValueError(f"size {value!r} is not a whole number of bytes")
    return int(total)


def format_size(value: int) -> str:
    """Render a byte count with the largest unit that divides it evenly.

    The inverse of :func:`parse_size`: ``524288`` -> ``"512KB"``,
    ``1048576`` -> ``"1MB"``, ``1536`` -> ``"1536B"`` (no fractional
    renderings, so ``parse_size(format_size(n)) == n`` for every
    non-negative ``n``).  This is the one spelling presets, override
    labels and cache reports all use.
    """
    if isinstance(value, bool) or not isinstance(value, int):
        raise TypeError(f"size must be an int, got {value!r}")
    if value < 0:
        raise ValueError(f"size must be non-negative, got {value}")
    for unit, multiplier in (("GB", 1024 ** 3), ("MB", 1024 ** 2), ("KB", 1024)):
        if value and value % multiplier == 0:
            return f"{value // multiplier}{unit}"
    return f"{value}B"


# ----------------------------------------------------------------------
# Named machine presets and spec parsing.
# ----------------------------------------------------------------------
MACHINE_PRESETS = Registry("machine preset")


def register_machine_preset(name: str, *, aliases: tuple[str, ...] = (),
                            description: str = ""):
    """Register a zero-argument factory returning a :class:`MachineConfig`."""
    return MACHINE_PRESETS.register(name, aliases=aliases, description=description)


@register_machine_preset(
    "paper_default", aliases=("default",),
    description="Table 2 default: 4-wide, 9-stage, 1 GHz, 512KB 8-way L2",
)
def _preset_paper_default() -> MachineConfig:
    return DEFAULT_MACHINE


@register_machine_preset(
    "little_5stage_600mhz",
    description="design-space low end: scalar, 5-stage, 600 MHz",
)
def _preset_little() -> MachineConfig:
    return MachineConfig(width=1, pipeline_stages=5, frequency_mhz=600,
                         name="little_5stage_600mhz")


@register_machine_preset(
    "mid_7stage_800mhz",
    description="design-space midpoint: 2-wide, 7-stage, 800 MHz",
)
def _preset_mid() -> MachineConfig:
    return MachineConfig(width=2, pipeline_stages=7, frequency_mhz=800,
                         name="mid_7stage_800mhz")


@register_machine_preset(
    "big_l2_1mb",
    description="default core with a 1MB 16-way L2 and the hybrid predictor",
)
def _preset_big_l2() -> MachineConfig:
    return MachineConfig(l2_size=1024 * 1024, l2_associativity=16,
                         branch_predictor="hybrid_3.5kb", name="big_l2_1mb")


_FIELD_NAMES = frozenset(f.name for f in fields(MachineConfig))


def machine_from_spec(spec: "MachineConfig | str | Mapping") -> MachineConfig:
    """Resolve a machine specification to a :class:`MachineConfig`.

    Accepted forms:

    * a :class:`MachineConfig` — returned unchanged;
    * a preset name (``"paper_default"``);
    * a mapping of keyword overrides with an optional ``"preset"`` entry,
      e.g. ``{"preset": "paper_default", "l2_size": "1MB",
      "branch_predictor": "hybrid_3.5kb"}``.  Byte-count fields
      (:data:`SIZE_FIELDS`) accept size strings.
    """
    if isinstance(spec, MachineConfig):
        return spec
    if isinstance(spec, str):
        return MACHINE_PRESETS.get(spec)()
    if not isinstance(spec, Mapping):
        raise TypeError(
            f"machine spec must be a MachineConfig, a preset name or a "
            f"mapping, got {type(spec).__name__}"
        )
    overrides = dict(spec)
    preset = overrides.pop("preset", "paper_default")
    unknown = sorted(set(overrides) - _FIELD_NAMES)
    if unknown:
        raise ValueError(
            f"unknown machine parameters {unknown}; "
            f"valid parameters: {sorted(_FIELD_NAMES)}"
        )
    for size_field in SIZE_FIELDS & set(overrides):
        overrides[size_field] = parse_size(overrides[size_field])
    machine = MACHINE_PRESETS.get(preset)()
    return machine.with_(**overrides) if overrides else machine
