"""Machine (microarchitecture) configuration shared by models and simulators.

A :class:`MachineConfig` captures every machine parameter the mechanistic
model needs (Table 1 of the paper) plus the parameters the detailed
simulators and the power model need: superscalar width, front-end pipeline
depth, clock frequency, functional-unit latencies, the cache/TLB hierarchy
and the branch predictor.

The same object drives the analytical model, the cycle-accurate in-order
simulator and the power model, which guarantees that a validation experiment
compares apples to apples.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.isa.opcodes import OpClass
from repro.memory.cache import CacheConfig
from repro.memory.hierarchy import MemoryHierarchyConfig
from repro.memory.tlb import TLBConfig

#: Total pipeline stages = front-end depth + execute + memory + write-back.
BACKEND_STAGES = 3


@dataclass(frozen=True)
class MachineConfig:
    """A superscalar in-order processor configuration.

    Parameters mirror Table 2 of the paper: the default is a 4-wide, 9-stage,
    1 GHz core with 32KB L1 caches, a 512KB 8-way L2 (10 ns) and a 1KB
    global-history branch predictor.
    """

    width: int = 4
    pipeline_stages: int = 9
    frequency_mhz: int = 1000
    mul_latency: int = 4
    div_latency: int = 20
    l1i_size: int = 32 * 1024
    l1i_associativity: int = 4
    l1d_size: int = 32 * 1024
    l1d_associativity: int = 4
    l2_size: int = 512 * 1024
    l2_associativity: int = 8
    line_size: int = 64
    l1_hit_cycles: int = 1
    l2_ns: float = 10.0
    memory_ns: float = 80.0
    tlb_entries: int = 32
    page_size: int = 4096
    tlb_miss_ns: float = 30.0
    branch_predictor: str = "global_1kb"
    name: str = ""

    def __post_init__(self) -> None:
        if self.width < 1:
            raise ValueError("width must be at least 1")
        if self.pipeline_stages < BACKEND_STAGES + 2:
            raise ValueError(
                f"pipeline needs at least {BACKEND_STAGES + 2} stages "
                "(fetch, decode, execute, memory, write-back)"
            )
        if self.frequency_mhz <= 0:
            raise ValueError("frequency must be positive")
        if self.mul_latency < 1 or self.div_latency < 1:
            raise ValueError("functional-unit latencies must be at least 1 cycle")

    # ------------------------------------------------------------------
    # Derived quantities.
    # ------------------------------------------------------------------
    @property
    def frontend_depth(self) -> int:
        """Number of front-end (fetch/decode) stages — the D of Eq. 4."""
        return self.pipeline_stages - BACKEND_STAGES

    @property
    def cycle_ns(self) -> float:
        return 1000.0 / self.frequency_mhz

    def _cycles(self, nanoseconds: float) -> int:
        return max(1, round(nanoseconds / self.cycle_ns))

    @property
    def l2_hit_cycles(self) -> int:
        return self._cycles(self.l2_ns)

    @property
    def memory_cycles(self) -> int:
        return self._cycles(self.memory_ns)

    @property
    def tlb_miss_cycles(self) -> int:
        return self._cycles(self.tlb_miss_ns)

    def execute_latency(self, op_class: OpClass) -> int:
        """Execute-stage occupancy in cycles for an instruction class."""
        if op_class is OpClass.INT_MUL:
            return self.mul_latency
        if op_class is OpClass.INT_DIV:
            return self.div_latency
        return 1

    def memory_hierarchy_config(self) -> MemoryHierarchyConfig:
        """Build the cache/TLB configuration implied by this machine."""
        return MemoryHierarchyConfig(
            l1i=CacheConfig(self.l1i_size, self.l1i_associativity, self.line_size, name="l1i"),
            l1d=CacheConfig(self.l1d_size, self.l1d_associativity, self.line_size, name="l1d"),
            l2=CacheConfig(self.l2_size, self.l2_associativity, self.line_size, name="l2"),
            itlb=TLBConfig(self.tlb_entries, self.page_size, name="itlb"),
            dtlb=TLBConfig(self.tlb_entries, self.page_size, name="dtlb"),
            l1_hit_cycles=self.l1_hit_cycles,
            l2_hit_cycles=self.l2_hit_cycles,
            memory_cycles=self.memory_cycles,
            tlb_miss_cycles=self.tlb_miss_cycles,
        )

    def with_(self, **overrides) -> "MachineConfig":
        """Return a copy with some fields replaced (convenience for sweeps)."""
        return replace(self, **overrides)

    def describe(self) -> str:
        return (
            f"{self.width}-wide, {self.pipeline_stages}-stage, "
            f"{self.frequency_mhz} MHz, L2 {self.l2_size // 1024}KB "
            f"{self.l2_associativity}-way, bpred {self.branch_predictor}"
        )


#: The paper's default configuration (Table 2, middle column).
DEFAULT_MACHINE = MachineConfig(name="default")
