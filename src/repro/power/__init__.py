"""Analytical power/energy model (McPAT substitute).

The paper drives its energy-delay-product design-space exploration (Figure 9)
with McPAT at 32 nm.  McPAT is not available offline, so this package
provides an analytical per-structure model with the same qualitative scaling
behaviour: wider and deeper pipelines cost more energy per instruction,
larger and more associative caches cost more per access and leak more, higher
frequency requires higher voltage (dynamic energy grows superlinearly), and
idle structures still leak.  Absolute joules are not meaningful — relative
ordering across the design space is what the EDP study needs.
"""

from repro.power.model import EnergyBreakdown, PowerModel, PowerModelParameters

__all__ = ["PowerModel", "PowerModelParameters", "EnergyBreakdown"]
