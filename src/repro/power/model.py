"""McPAT-style analytical energy model for small in-order cores."""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.machine import MachineConfig
from repro.profiler.machine_stats import MissProfile
from repro.profiler.program import ProgramProfile


@dataclass(frozen=True)
class PowerModelParameters:
    """Technology/activity constants of the energy model.

    The defaults are loosely calibrated to a 32 nm embedded core (the paper's
    technology node): a scalar five-stage core spends a few tens of picojoules
    per instruction in the pipeline, cache accesses cost roughly
    ``E = access_energy_base * sqrt(size_in_kb) * assoc_factor`` picojoules,
    and leakage is proportional to the total transistor estate.
    """

    # Dynamic energy, picojoules.
    pipeline_energy_per_instruction_pj: float = 22.0
    width_energy_exponent: float = 1.4
    depth_energy_factor: float = 0.06
    cache_access_energy_base_pj: float = 4.0
    cache_associativity_factor: float = 0.08
    memory_access_energy_pj: float = 2500.0
    predictor_access_energy_pj: float = 1.2
    flush_energy_per_stage_pj: float = 6.0
    # Leakage, milliwatts.
    core_leakage_base_mw: float = 6.0
    leakage_per_kb_mw: float = 0.055
    # Voltage scaling: V = v_base + v_slope * (f / f_nominal).
    nominal_frequency_mhz: float = 1000.0
    voltage_base: float = 0.65
    voltage_slope: float = 0.35


@dataclass
class EnergyBreakdown:
    """Energy per structure for one run, in joules."""

    pipeline: float = 0.0
    l1i: float = 0.0
    l1d: float = 0.0
    l2: float = 0.0
    memory: float = 0.0
    predictor: float = 0.0
    flushes: float = 0.0
    leakage: float = 0.0

    @property
    def dynamic(self) -> float:
        return (self.pipeline + self.l1i + self.l1d + self.l2 + self.memory
                + self.predictor + self.flushes)

    @property
    def total(self) -> float:
        return self.dynamic + self.leakage

    def as_dict(self) -> dict[str, float]:
        return {
            "pipeline": self.pipeline,
            "l1i": self.l1i,
            "l1d": self.l1d,
            "l2": self.l2,
            "memory": self.memory,
            "predictor": self.predictor,
            "flushes": self.flushes,
            "leakage": self.leakage,
        }


class PowerModel:
    """Estimate energy, power and EDP for a (workload, machine, cycles) triple."""

    def __init__(self, machine: MachineConfig,
                 parameters: PowerModelParameters | None = None):
        self.machine = machine
        self.parameters = parameters if parameters is not None else PowerModelParameters()

    # ------------------------------------------------------------------
    # Scaling helpers.
    # ------------------------------------------------------------------
    def _voltage(self) -> float:
        p = self.parameters
        ratio = self.machine.frequency_mhz / p.nominal_frequency_mhz
        return p.voltage_base + p.voltage_slope * ratio

    def _voltage_scale(self) -> float:
        """Dynamic energy scales with V^2 (normalised to the nominal voltage)."""
        p = self.parameters
        nominal = p.voltage_base + p.voltage_slope
        return (self._voltage() / nominal) ** 2

    def _cache_access_energy_pj(self, size_bytes: int, associativity: int) -> float:
        p = self.parameters
        size_kb = size_bytes / 1024.0
        return (p.cache_access_energy_base_pj * math.sqrt(size_kb)
                * (1.0 + p.cache_associativity_factor * associativity))

    def _leakage_power_mw(self) -> float:
        p = self.parameters
        machine = self.machine
        cache_kb = (machine.l1i_size + machine.l1d_size + machine.l2_size) / 1024.0
        core_factor = (machine.width ** 1.2) * (
            1.0 + p.depth_energy_factor * machine.pipeline_stages
        )
        return (p.core_leakage_base_mw * core_factor
                + p.leakage_per_kb_mw * cache_kb) * self._voltage()

    # ------------------------------------------------------------------
    def energy(self, program: ProgramProfile, misses: MissProfile,
               cycles: float) -> EnergyBreakdown:
        """Energy for executing ``program`` in ``cycles`` on this machine."""
        p = self.parameters
        machine = self.machine
        scale = self._voltage_scale()
        pj = 1e-12

        breakdown = EnergyBreakdown()
        per_instruction = (
            p.pipeline_energy_per_instruction_pj
            * (machine.width ** (p.width_energy_exponent - 1.0))
            * (1.0 + p.depth_energy_factor * machine.pipeline_stages)
        )
        breakdown.pipeline = program.instructions * per_instruction * scale * pj

        l1i_energy = self._cache_access_energy_pj(machine.l1i_size, machine.l1i_associativity)
        l1d_energy = self._cache_access_energy_pj(machine.l1d_size, machine.l1d_associativity)
        l2_energy = self._cache_access_energy_pj(machine.l2_size, machine.l2_associativity)
        breakdown.l1i = program.instructions * l1i_energy * scale * pj
        data_accesses = program.loads + program.stores
        breakdown.l1d = data_accesses * l1d_energy * scale * pj
        l2_accesses = misses.l1i_misses + misses.l1d_misses
        breakdown.l2 = l2_accesses * l2_energy * scale * pj
        memory_accesses = misses.il2_misses + misses.dl2_misses
        breakdown.memory = memory_accesses * p.memory_access_energy_pj * scale * pj
        breakdown.predictor = (
            program.mix.control * p.predictor_access_energy_pj * scale * pj
        )
        breakdown.flushes = (
            misses.mispredictions * machine.width * machine.frontend_depth
            * p.flush_energy_per_stage_pj * scale * pj
        )

        execution_time = cycles * machine.cycle_ns * 1e-9
        breakdown.leakage = self._leakage_power_mw() * 1e-3 * execution_time
        return breakdown

    # ------------------------------------------------------------------
    def energy_delay_product(self, program: ProgramProfile, misses: MissProfile,
                             cycles: float) -> float:
        """EDP in joule-seconds (the paper's Figure 9 metric)."""
        execution_time = cycles * self.machine.cycle_ns * 1e-9
        return self.energy(program, misses, cycles).total * execution_time

    def average_power_watts(self, program: ProgramProfile, misses: MissProfile,
                            cycles: float) -> float:
        execution_time = cycles * self.machine.cycle_ns * 1e-9
        if execution_time <= 0:
            return 0.0
        return self.energy(program, misses, cycles).total / execution_time
