PY := PYTHONPATH=src python

.PHONY: test lint bench bench-smoke serve-smoke experiments

test:
	$(PY) -m pytest -x -q

lint:
	ruff check .
	python tools/check_process_pools.py
	python tools/check_print.py

bench:
	$(PY) benchmarks/run_bench.py

# Single-repetition bench pass writing to a scratch file: a CI smoke check
# that every benchmark still runs, without touching BENCH_core.json.
bench-smoke:
	$(PY) benchmarks/run_bench.py --repeat 1 --output /tmp/BENCH_smoke.json

# Regression gate against the committed reference numbers.  CI hardware
# differs wildly from the machine that recorded BENCH_core.json, so the
# smoke tolerance is deliberately loose — it catches order-of-magnitude
# regressions and proves the comparison machinery works; tighten locally
# with `repro-bench --compare BENCH_core.json --tolerance 25`.  Three
# repetitions so the compared median is a warm run, not process cold-start.
bench-compare:
	$(PY) benchmarks/run_bench.py --repeat 3 --output /tmp/BENCH_compare.json \
		--compare BENCH_core.json --tolerance 400 --stage-tolerance-ms 50

# Start an evaluation server, answer one request through ServiceClient,
# verify the warm repeat hits the result cache, assert a clean shutdown.
serve-smoke:
	$(PY) -m repro.service.smoke

experiments:
	$(PY) -m repro.cli run all
