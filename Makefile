PY := PYTHONPATH=src python

.PHONY: test bench experiments

test:
	$(PY) -m pytest -x -q

bench:
	$(PY) benchmarks/run_bench.py

experiments:
	$(PY) -m repro.cli
