PY := PYTHONPATH=src python

.PHONY: test lint bench bench-smoke serve-smoke experiments

test:
	$(PY) -m pytest -x -q

lint:
	ruff check .

bench:
	$(PY) benchmarks/run_bench.py

# Single-repetition bench pass writing to a scratch file: a CI smoke check
# that every benchmark still runs, without touching BENCH_core.json.
bench-smoke:
	$(PY) benchmarks/run_bench.py --repeat 1 --output /tmp/BENCH_smoke.json

# Start an evaluation server, answer one request through ServiceClient,
# verify the warm repeat hits the result cache, assert a clean shutdown.
serve-smoke:
	$(PY) -m repro.service.smoke

experiments:
	$(PY) -m repro.cli run all
