PY := PYTHONPATH=src python

.PHONY: test lint bench experiments

test:
	$(PY) -m pytest -x -q

lint:
	ruff check .

bench:
	$(PY) benchmarks/run_bench.py

experiments:
	$(PY) -m repro.cli run all
