#!/usr/bin/env python
"""Lint rule: ``ProcessPoolExecutor`` may only be constructed in the scheduler.

The persistent warm worker pool (:mod:`repro.runtime.scheduler`) is the
tree's single point of process-pool ownership — that is what makes the
"request N+1 pays zero pool spawn" guarantee checkable, and what keeps
every pool worker wired to the shared-memory data plane's lifecycle
hooks (mode pinning, parent-death sentinel, segment detach at exit).  A
``ProcessPoolExecutor`` constructed anywhere else under ``src/`` would
silently reintroduce per-call pool churn, so this checker fails the lint
step when one appears.

Usage: ``python tools/check_process_pools.py`` (wired into ``make lint``
and CI).  Exits 1 listing each offending ``file:line``.
"""

from __future__ import annotations

import ast
import sys
from pathlib import Path

#: The one module allowed to construct (or even import) the executor.
ALLOWED = Path("src/repro/runtime/scheduler.py")

#: Names whose construction or import we flag.
FORBIDDEN = ("ProcessPoolExecutor",)


def violations(root: Path) -> list[str]:
    found: list[str] = []
    for path in sorted((root / "src").rglob("*.py")):
        relative = path.relative_to(root)
        if relative == ALLOWED:
            continue
        try:
            tree = ast.parse(path.read_text(), filename=str(relative))
        except SyntaxError as exc:
            found.append(f"{relative}:{exc.lineno}: unparsable: {exc.msg}")
            continue
        for node in ast.walk(tree):
            name = None
            if isinstance(node, ast.ImportFrom):
                for alias in node.names:
                    if alias.name in FORBIDDEN:
                        name = alias.name
            elif isinstance(node, ast.Name) and node.id in FORBIDDEN:
                name = node.id
            elif isinstance(node, ast.Attribute) and node.attr in FORBIDDEN:
                name = node.attr
            if name is not None:
                found.append(
                    f"{relative}:{node.lineno}: {name} outside {ALLOWED} "
                    "— route process pools through "
                    "repro.runtime.scheduler.WorkerPool"
                )
    return found


def main() -> int:
    root = Path(__file__).resolve().parent.parent
    found = violations(root)
    for line in found:
        print(line)
    if found:
        return 1
    print("check_process_pools: ok "
          f"(ProcessPoolExecutor only in {ALLOWED})")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
