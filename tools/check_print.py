#!/usr/bin/env python
"""Lint rule: no bare ``print()`` in library code under ``src/repro/``.

Diagnostics belong on stderr through the structured :mod:`repro.obs.log`
logger (machine-parseable with ``REPRO_LOG=json``, trace-correlated when a
span is open); result tables belong to the reporters.  A stray ``print``
in library code interleaves with both and breaks the byte-identical
stdout contract the CLI tests rely on, so this checker fails the lint
step when one appears outside the allowlisted entry points that *own*
stdout.

Usage: ``python tools/check_print.py`` (wired into ``make lint`` and CI).
Exits 1 listing each offending ``file:line``.
"""

from __future__ import annotations

import ast
import sys
from pathlib import Path

#: Entry-point modules whose stdout IS the product: the CLI's tables and
#: prompts, and the benchmark harness's progress lines / child JSON.
ALLOWED = {
    Path("src/repro/cli.py"),
    Path("src/repro/bench.py"),
}


def violations(root: Path) -> list[str]:
    found: list[str] = []
    for path in sorted((root / "src" / "repro").rglob("*.py")):
        relative = path.relative_to(root)
        if relative in ALLOWED:
            continue
        try:
            tree = ast.parse(path.read_text(), filename=str(relative))
        except SyntaxError as exc:
            found.append(f"{relative}:{exc.lineno}: unparsable: {exc.msg}")
            continue
        for node in ast.walk(tree):
            if (isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Name)
                    and node.func.id == "print"):
                found.append(
                    f"{relative}:{node.lineno}: print() in library code — "
                    "use repro.obs.log.get_logger(...) for diagnostics or "
                    "a reporter for tables"
                )
    return found


def main() -> int:
    found = violations(Path(__file__).resolve().parent.parent)
    for line in found:
        print(line, file=sys.stderr)
    return 1 if found else 0


if __name__ == "__main__":
    sys.exit(main())
