"""Unit tests for CPI stacks."""

import pytest

from repro.core.cpi_stack import (
    CPIComponent,
    CPIStack,
    PAPER_GROUP_ORDER,
    PAPER_GROUPS,
)


class TestCPIStack:
    def _stack(self) -> CPIStack:
        stack = CPIStack(name="demo", instructions=1000)
        stack.add(CPIComponent.BASE, 250.0)
        stack.add(CPIComponent.MUL, 50.0)
        stack.add(CPIComponent.DIV, 25.0)
        stack.add(CPIComponent.DEP_UNIT, 100.0)
        stack.add(CPIComponent.BPRED_MISS, 75.0)
        return stack

    def test_total_and_cpi(self):
        stack = self._stack()
        assert stack.total_cycles == pytest.approx(500.0)
        assert stack.cpi == pytest.approx(0.5)
        assert stack.cpi_of(CPIComponent.BASE) == pytest.approx(0.25)
        assert stack.component(CPIComponent.MUL) == pytest.approx(50.0)
        assert stack.component(CPIComponent.DL2_MISS) == 0.0

    def test_add_accumulates_and_clamps(self):
        stack = CPIStack(name="x", instructions=10)
        stack.add(CPIComponent.BASE, 1.0)
        stack.add(CPIComponent.BASE, 2.0)
        stack.add(CPIComponent.BASE, -5.0)     # negative contributions are dropped
        stack.add(CPIComponent.MUL, 0.0)       # zero contributions are dropped
        assert stack.component(CPIComponent.BASE) == pytest.approx(3.0)
        assert CPIComponent.MUL not in stack.cycles

    def test_grouping_merges_mul_and_div(self):
        grouped = self._stack().grouped()
        assert grouped["mul/div"] == pytest.approx(0.075)
        assert grouped["base"] == pytest.approx(0.25)
        assert grouped["dependencies"] == pytest.approx(0.1)
        # Grouping preserves the total CPI.
        assert sum(grouped.values()) == pytest.approx(self._stack().cpi)

    def test_group_order_follows_paper(self):
        grouped = self._stack().grouped()
        labels = list(grouped)
        expected_order = [label for label in PAPER_GROUP_ORDER if label in grouped]
        assert labels[:len(expected_order)] == expected_order

    def test_every_component_has_a_group(self):
        assert set(PAPER_GROUPS) == set(CPIComponent)

    def test_scaled(self):
        stack = self._stack()
        doubled = stack.scaled(2.0)
        assert doubled.total_cycles == pytest.approx(2 * stack.total_cycles)
        assert stack.total_cycles == pytest.approx(500.0)  # original untouched

    def test_as_rows_and_str(self):
        rows = self._stack().as_rows()
        assert ("base", pytest.approx(0.25)) in rows
        assert "CPI=0.500" in str(self._stack())

    def test_empty_stack(self):
        stack = CPIStack(name="empty", instructions=0)
        assert stack.cpi == 0.0
        assert stack.cpi_of(CPIComponent.BASE) == 0.0
        assert stack.grouped() == {}
