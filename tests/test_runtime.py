"""Tests for the session runtime: artifact cache, session, scheduler, results."""

from __future__ import annotations

import pytest

from repro.machine import DEFAULT_MACHINE, MachineConfig
from repro.runtime import ArtifactCache, ExperimentResult, Session
from repro.runtime.artifacts import MISSING
from repro.runtime.reporters import render, render_csv, render_text
from repro.runtime.scheduler import session_map


# ----------------------------------------------------------------------------
# Artifact cache.
# ----------------------------------------------------------------------------
class TestArtifactCache:
    def test_round_trip(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        cache.store({"payload": [1, 2, 3]}, "thing", name="x", version=1)
        assert cache.load("thing", name="x", version=1) == {"payload": [1, 2, 3]}
        assert cache.stats.hits == 1 and cache.stats.stores == 1

    def test_miss_on_absent_and_different_key(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        assert cache.load("thing", name="x", version=1) is MISSING
        cache.store("value", "thing", name="x", version=1)
        # A different version is a different artifact.
        assert cache.load("thing", name="x", version=2) is MISSING

    def test_disabled_cache_never_hits(self):
        cache = ArtifactCache(None)
        cache.store("value", "thing", name="x")
        assert cache.load("thing", name="x") is MISSING
        assert not cache.enabled

    def test_corrupt_entry_is_dropped_and_rebuilt(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        cache.store("value", "thing", name="x")
        path = cache.path_for("thing", name="x")
        path.write_bytes(b"not a pickle")
        assert cache.load("thing", name="x") is MISSING
        assert not path.exists()
        value, cached = cache.load_or_build(lambda: "rebuilt", "thing", name="x")
        assert value == "rebuilt" and not cached
        value, cached = cache.load_or_build(lambda: "unused", "thing", name="x")
        assert value == "rebuilt" and cached

    def test_disk_stats_and_clear(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        cache.store([1] * 100, "trace", workload="sha", flags="O3",
                    trace_version=1)
        cache.store({"h": 2}, "engine", workload="sha", flags="O3",
                    trace_version=1, engine_version=3)
        stats = cache.disk_stats()
        assert stats["entries"] == 2 and stats["bytes"] > 0
        assert set(stats["kinds"]) == {"trace", "engine"}
        assert stats["schema_versions"] == {"engine_version": [3],
                                            "trace_version": [1]}
        assert stats["corrupt"] == 0
        assert cache.clear() == 2
        assert cache.disk_stats()["entries"] == 0

    def test_disk_stats_counts_unreadable_entries(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        cache.store("value", "thing", name="x")
        cache.path_for("thing", name="x").write_bytes(b"junk")
        stats = cache.disk_stats()
        assert stats["entries"] == 1 and stats["corrupt"] == 1

    def test_legacy_single_pickle_entry_is_dropped_and_rebuilt(self, tmp_path):
        import pickle

        cache = ArtifactCache(tmp_path)
        path = cache.path_for("thing", name="x")
        path.parent.mkdir(parents=True)
        with path.open("wb") as handle:  # pre-two-part on-disk layout
            pickle.dump({"fields": {"kind": "thing", "name": "x"},
                         "value": "stale"}, handle)
        assert cache.load("thing", name="x") is MISSING
        assert not path.exists()
        value, cached = cache.load_or_build(lambda: "fresh", "thing", name="x")
        assert value == "fresh" and not cached
        assert cache.load("thing", name="x") == "fresh"


def _racing_store(args) -> int:
    """Hammer one cache key from a worker process (atomic-write race test)."""
    cache_dir, worker_id, rounds = args
    cache = ArtifactCache(cache_dir)
    # Big enough that a non-atomic write would be observably torn.
    value = {"worker": worker_id, "blob": bytes(range(256)) * 1024}
    for _ in range(rounds):
        cache.store(value, "race", name="contended", version=1)
    return worker_id


class TestConcurrentArtifactCacheWriters:
    def test_racing_writers_never_corrupt_an_entry(self, tmp_path):
        """Two processes storing the same key concurrently both succeed.

        Writes go through tmp-file + ``os.replace``, so every concurrent
        read must see either a miss (before the first write lands) or one
        writer's complete, unpickleable-without-error value — never a
        torn pickle.  The loader treats corruption as a miss *and deletes
        the entry*, so a fresh cache asserting a hit at the end proves
        the final artifact is intact.
        """
        from concurrent.futures import ProcessPoolExecutor

        rounds = 20
        expected_blob = bytes(range(256)) * 1024
        with ProcessPoolExecutor(max_workers=2) as pool:
            futures = [
                pool.submit(_racing_store, (tmp_path, worker_id, rounds))
                for worker_id in (0, 1)
            ]
            # Read concurrently with the racing writers: every observation
            # must be a complete value from one of the two writers.
            observed_workers = set()
            while not all(future.done() for future in futures):
                value = ArtifactCache(tmp_path).load("race", name="contended",
                                                     version=1)
                if value is not MISSING:
                    assert value["blob"] == expected_blob
                    observed_workers.add(value["worker"])
            assert sorted(future.result() for future in futures) == [0, 1]

        final = ArtifactCache(tmp_path)
        value = final.load("race", name="contended", version=1)
        assert value is not MISSING, "final entry was corrupt or missing"
        assert value["worker"] in (0, 1)
        assert value["blob"] == expected_blob
        assert observed_workers <= {0, 1}
        # No stray tmp files left behind by either writer.
        leftovers = [path for path in (tmp_path / "race").iterdir()
                     if path.suffix != ".pkl"]
        assert leftovers == []


# ----------------------------------------------------------------------------
# Session.
# ----------------------------------------------------------------------------
class TestSession:
    def test_cold_session_compiles_and_generates(self, tmp_path):
        session = Session(cache_dir=tmp_path)
        workload = session.workload("sha")
        assert len(workload.trace()) > 0
        assert session.stats.workloads_compiled == 1
        assert session.stats.traces_generated == 1

    def test_warm_session_performs_zero_compilations_and_generations(self, tmp_path):
        cold = Session(cache_dir=tmp_path)
        cold_profile = cold.miss_profile("sha", DEFAULT_MACHINE)
        cold_trace = cold.trace("sha")

        warm = Session(cache_dir=tmp_path)
        warm_trace = warm.trace("sha")
        warm_profile = warm.miss_profile("sha", DEFAULT_MACHINE)
        assert warm.stats.workloads_compiled == 0
        assert warm.stats.traces_generated == 0
        assert warm.stats.trace_cache_hits == 1
        # The cached trace is the same dynamic execution, column for column.
        assert warm_trace.pcs == cold_trace.pcs
        assert warm_trace.mem_addrs == cold_trace.mem_addrs
        assert warm_trace.op_classes == cold_trace.op_classes
        assert warm_profile == cold_profile

    def test_engine_state_is_persisted_across_sessions(self, tmp_path):
        cold = Session(cache_dir=tmp_path)
        cold.miss_profile("sha", DEFAULT_MACHINE)
        assert cold.stats.engine_state_saves == 1

        warm = Session(cache_dir=tmp_path)
        engine = warm.engine("sha")
        # Base + L2 + branch passes (and the control stream) came from disk,
        # before any profiling request was made.
        assert warm.stats.engine_state_loads == 1
        assert engine.pass_count >= 3
        before = engine.pass_count
        warm.miss_profile("sha", DEFAULT_MACHINE)
        assert engine.pass_count == before  # nothing recomputed
        assert warm.stats.engine_state_saves == 0  # nothing rewritten

    def test_new_geometry_extends_persisted_state(self, tmp_path):
        first = Session(cache_dir=tmp_path)
        first.miss_profile("sha", DEFAULT_MACHINE)

        second = Session(cache_dir=tmp_path)
        other = DEFAULT_MACHINE.with_(l2_size=128 * 1024, name="small-l2")
        second.miss_profile("sha", other)
        assert second.stats.engine_state_saves == 1  # new L2 pass persisted

        third = Session(cache_dir=tmp_path)
        third.miss_profile("sha", DEFAULT_MACHINE)
        third.miss_profile("sha", other)
        assert third.stats.engine_state_saves == 0

    def test_compiler_flags_are_distinct_artifacts(self, tmp_path):
        session = Session(cache_dir=tmp_path)
        scheduled = session.trace("tiff2bw", flags="O3")
        raw = session.trace("tiff2bw", flags="nosched")
        assert len(scheduled) == len(raw)  # scheduling only reorders
        # Straight-line fetch addresses are identical; what scheduling moves
        # is which instruction occupies each slot.
        assert scheduled.op_classes != raw.op_classes

        warm = Session(cache_dir=tmp_path)
        warm.trace("tiff2bw", flags="O3")
        warm.trace("tiff2bw", flags="nosched")
        assert warm.stats.traces_generated == 0
        assert warm.stats.trace_cache_hits == 2

    def test_trace_only_shim_fails_loudly_on_program_operations(self, tmp_path):
        from repro.workloads.base import WorkloadBuildError

        Session(cache_dir=tmp_path).trace("sha")
        warm = Session(cache_dir=tmp_path)
        shim = warm.workload("sha")
        assert shim.is_trace_only
        assert len(shim.trace()) > 0  # the cached trace is served
        with pytest.raises(WorkloadBuildError, match="trace-only"):
            shim.trace(force=True)
        with pytest.raises(WorkloadBuildError, match="trace-only"):
            shim.with_program(program=None, suffix="x")

    def test_unknown_flags_rejected(self):
        with pytest.raises(ValueError, match="flags"):
            Session().workload("sha", flags="O2")

    def test_jobs_must_be_positive(self):
        with pytest.raises(ValueError):
            Session(jobs=0)

    def test_miss_profiles_memoized_per_frozen_config(self):
        session = Session()
        workload = session.workload("sha")
        first = session.miss_profile(workload, DEFAULT_MACHINE)
        again = session.miss_profile(workload, DEFAULT_MACHINE)
        assert first is again
        assert session.stats.miss_profiles_built == 1

    def test_unmanaged_workload_profiles_still_work(self):
        from repro.workloads import get_workload

        session = Session()
        workload = get_workload("sha")  # registry, not session-managed
        profile = session.miss_profile(workload, DEFAULT_MACHINE)
        assert profile.instructions == len(workload.trace())
        program = session.program_profile(workload)
        assert program.instructions == len(workload.trace())


# ----------------------------------------------------------------------------
# Scheduler.
# ----------------------------------------------------------------------------
def _trace_fingerprint(session: Session, item) -> tuple[str, int, int]:
    """Module-level work unit (process pools pickle functions by reference)."""
    name, machine = item
    profile = session.miss_profile(name, machine)
    return (name, profile.instructions, profile.mispredictions)


class TestScheduler:
    def test_parallel_map_matches_serial(self, tmp_path):
        items = [(name, DEFAULT_MACHINE) for name in ("sha", "qsort", "dijkstra")]
        serial = session_map(Session(cache_dir=tmp_path, jobs=1),
                             _trace_fingerprint, items)
        parallel = session_map(Session(cache_dir=tmp_path, jobs=2),
                               _trace_fingerprint, items)
        assert parallel == serial
        assert [entry[0] for entry in parallel] == ["sha", "qsort", "dijkstra"]

    def test_single_item_runs_inline(self):
        session = Session(jobs=4)
        results = session.map(_trace_fingerprint, [("sha", DEFAULT_MACHINE)])
        assert len(results) == 1
        # Inline execution used the parent session, observable via its stats.
        assert session.stats.miss_profiles_built == 1


# ----------------------------------------------------------------------------
# Results and reporters.
# ----------------------------------------------------------------------------
def _sample_result() -> ExperimentResult:
    return ExperimentResult(
        experiment="sample",
        title="Sample — a tiny table",
        headers=("name", "value", "ok"),
        rows=((u"alpha", 1.25, True), ("beta", 2, False), ("gamma", None, True)),
        footnotes=("a footnote",),
        metadata={"answer": 42, "ratio": 0.5},
    )


class TestExperimentResult:
    def test_json_round_trip_is_lossless(self):
        result = _sample_result()
        assert ExperimentResult.from_json(result.to_json()) == result

    def test_text_rendering(self):
        text = render_text(_sample_result())
        assert text.startswith("Sample — a tiny table")
        assert "1.250" in text          # floats get 3 decimals
        assert "yes" in text and "no" in text  # bools render as yes/no
        assert text.rstrip().endswith("a footnote")

    def test_csv_rendering(self):
        csv_text = render_csv(_sample_result())
        lines = csv_text.splitlines()
        assert lines[0] == "name,value,ok"
        assert lines[1] == "alpha,1.25,True"
        assert lines[3] == "gamma,,True"

    def test_unknown_format_rejected(self):
        with pytest.raises(ValueError, match="unknown format"):
            render(_sample_result(), "yaml")

    def test_machine_config_round_trips_through_with_(self):
        # Guard for the scheduler: configurations cross process boundaries.
        import pickle

        machine = MachineConfig(name="x").with_(width=2)
        assert pickle.loads(pickle.dumps(machine)) == machine
