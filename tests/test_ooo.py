"""Tests for the out-of-order pipeline simulator and interval model."""

import pytest

from repro.core import InOrderMechanisticModel, OutOfOrderIntervalModel
from repro.core.cpi_stack import CPIComponent
from repro.core.ooo import OutOfOrderModelConfig
from repro.isa import ProgramBuilder
from repro.machine import MachineConfig
from repro.pipeline import InOrderPipeline, OutOfOrderPipeline
from repro.pipeline.ooo import OutOfOrderConfig
from repro.profiler import profile_machine, profile_program
from repro.trace import FunctionalSimulator
from repro.workloads import get_workload


def fast_machine(**overrides) -> MachineConfig:
    defaults = dict(width=4, pipeline_stages=5, name="ooo-test",
                    l2_ns=1.0, memory_ns=2.0, tlb_miss_ns=1.0)
    defaults.update(overrides)
    return MachineConfig(**defaults)


class TestOutOfOrderPipeline:
    def test_config_validation(self):
        with pytest.raises(ValueError):
            OutOfOrderConfig(rob_size=0)
        with pytest.raises(ValueError):
            OutOfOrderConfig(mshrs=0)

    def test_independent_multiplies_overlap(self):
        """The key difference from in-order: independent long ops overlap."""
        machine = fast_machine(mul_latency=4)
        b = ProgramBuilder("muls")
        for index in range(60):
            b.muli(1 + (index % 8), 0, 3)
        b.halt()
        trace = FunctionalSimulator(b.build()).run()
        in_order = InOrderPipeline(machine).run(trace)
        out_of_order = OutOfOrderPipeline(machine).run(trace)
        assert out_of_order.cycles < in_order.cycles * 0.6

    def test_dependent_chain_not_accelerated(self):
        machine = fast_machine()
        b = ProgramBuilder("chain")
        b.li(1, 0)
        for _ in range(100):
            b.addi(1, 1, 1)
        b.halt()
        trace = FunctionalSimulator(b.build()).run()
        in_order = InOrderPipeline(machine).run(trace)
        out_of_order = OutOfOrderPipeline(machine).run(trace)
        # A serial dependence chain is the dataflow limit for both cores.
        assert out_of_order.cycles >= 100
        assert out_of_order.cycles <= in_order.cycles + 10

    def test_ooo_not_slower_on_real_workloads(self, default_machine):
        trace = get_workload("tiffdither").trace()
        in_order = InOrderPipeline(default_machine).run(trace)
        out_of_order = OutOfOrderPipeline(default_machine).run(trace)
        assert out_of_order.cycles <= in_order.cycles
        assert out_of_order.instructions == in_order.instructions

    def test_rob_size_matters(self):
        machine = fast_machine(memory_ns=100.0)
        trace = get_workload("mcf_like").trace()
        small_rob = OutOfOrderPipeline(machine, OutOfOrderConfig(rob_size=8)).run(trace)
        large_rob = OutOfOrderPipeline(machine, OutOfOrderConfig(rob_size=128)).run(trace)
        assert large_rob.cycles <= small_rob.cycles

    def test_mshr_limit_throttles_mlp(self):
        machine = fast_machine(memory_ns=100.0)
        trace = get_workload("tiff2rgba").trace()
        one_mshr = OutOfOrderPipeline(machine, OutOfOrderConfig(mshrs=1)).run(trace)
        many_mshrs = OutOfOrderPipeline(machine, OutOfOrderConfig(mshrs=16)).run(trace)
        assert many_mshrs.cycles <= one_mshr.cycles

    def test_mispredictions_counted(self, default_machine):
        trace = get_workload("patricia").trace()
        result = OutOfOrderPipeline(default_machine).run(trace)
        assert result.mispredictions > 0
        assert result.cpi > 0
        assert result.ipc == pytest.approx(1.0 / result.cpi)


class TestOutOfOrderIntervalModel:
    def _stacks(self, name, machine):
        trace = get_workload(name).trace()
        program = profile_program(trace)
        misses = profile_machine(trace, machine)
        in_order = InOrderMechanisticModel(machine).predict(program, misses)
        out_of_order = OutOfOrderIntervalModel(machine).predict(program, misses)
        return in_order, out_of_order

    def test_dependencies_hidden_out_of_order(self, default_machine):
        in_order, out_of_order = self._stacks("dijkstra", default_machine)
        assert in_order.stack.component(CPIComponent.DEP_UNIT) > 0
        assert out_of_order.stack.component(CPIComponent.DEP_UNIT) == 0.0
        assert out_of_order.cpi < in_order.cpi

    def test_muldiv_hidden_out_of_order(self, default_machine):
        in_order, out_of_order = self._stacks("tiff2bw", default_machine)
        assert in_order.stack.component(CPIComponent.MUL) > 0
        assert out_of_order.stack.component(CPIComponent.MUL) == 0.0

    def test_branch_cost_larger_out_of_order(self, default_machine):
        """Per-misprediction cost includes the resolution time out of order."""
        in_order, out_of_order = self._stacks("patricia", default_machine)
        in_order_bpred = in_order.stack.component(CPIComponent.BPRED_MISS)
        out_of_order_bpred = out_of_order.stack.component(CPIComponent.BPRED_MISS)
        assert out_of_order_bpred > in_order_bpred

    def test_icache_component_identical(self, default_machine):
        """I-cache miss penalty only depends on the miss latency (Section 6.1)."""
        in_order, out_of_order = self._stacks("sha", default_machine)
        in_order_il2 = in_order.stack.component(CPIComponent.IL2_MISS)
        out_of_order_il2 = out_of_order.stack.component(CPIComponent.IL2_MISS)
        assert out_of_order_il2 == pytest.approx(in_order_il2, rel=0.05)

    def test_dl2_component_smaller_out_of_order(self, default_machine):
        """Memory-level parallelism shrinks the data L2 miss component."""
        in_order, out_of_order = self._stacks("tiff2rgba", default_machine)
        assert (out_of_order.stack.component(CPIComponent.DL2_MISS)
                <= in_order.stack.component(CPIComponent.DL2_MISS))

    def test_resolution_time_configurable(self, default_machine):
        trace = get_workload("patricia").trace()
        program = profile_program(trace)
        misses = profile_machine(trace, default_machine)
        fast_resolve = OutOfOrderIntervalModel(
            default_machine, OutOfOrderModelConfig(branch_resolution_cycles=1.0)
        ).predict(program, misses)
        slow_resolve = OutOfOrderIntervalModel(
            default_machine, OutOfOrderModelConfig(branch_resolution_cycles=20.0)
        ).predict(program, misses)
        assert slow_resolve.cpi > fast_resolve.cpi

    def test_default_resolution_scales_with_rob(self):
        config = OutOfOrderModelConfig(rob_size=64)
        assert config.resolution(width=4) == pytest.approx(8.0)
        explicit = OutOfOrderModelConfig(branch_resolution_cycles=5.0)
        assert explicit.resolution(width=4) == 5.0
