"""Tests for the mechanistic in-order model: components, accuracy, ablations."""

import pytest

from repro.core import CPIComponent, InOrderMechanisticModel, predict_workload
from repro.machine import MachineConfig
from repro.pipeline import InOrderPipeline
from repro.profiler import profile_machine, profile_program
from repro.workloads import get_workload


class TestModelStructure:
    def test_base_component_is_n_over_w(self, sha_trace, default_machine):
        program = profile_program(sha_trace)
        misses = profile_machine(sha_trace, default_machine)
        result = InOrderMechanisticModel(default_machine).predict(program, misses)
        assert result.stack.component(CPIComponent.BASE) == pytest.approx(
            len(sha_trace) / default_machine.width
        )
        assert result.instructions == len(sha_trace)
        assert result.cycles >= len(sha_trace) / default_machine.width
        assert result.ipc == pytest.approx(1.0 / result.cpi)
        assert result.execution_time_seconds > 0

    def test_mul_component_tracks_instruction_count(self, default_machine):
        workload = get_workload("tiff2bw")
        trace = workload.trace()
        program = profile_program(trace)
        misses = profile_machine(trace, default_machine)
        result = InOrderMechanisticModel(default_machine).predict(program, misses)
        expected = program.multiplies * (
            (default_machine.mul_latency - 1) - 3 / 8
        )
        assert result.stack.component(CPIComponent.MUL) == pytest.approx(expected)

    def test_width_one_has_no_dependency_or_correction(self, sha_trace):
        machine = MachineConfig(width=1, name="scalar")
        program = profile_program(sha_trace)
        misses = profile_machine(sha_trace, machine)
        result = InOrderMechanisticModel(machine).predict(program, misses)
        assert result.stack.component(CPIComponent.DEP_UNIT) == 0.0
        assert result.stack.component(CPIComponent.DEP_LONG) == 0.0
        # Load-use bubbles exist even on a scalar pipeline.
        assert result.stack.component(CPIComponent.DEP_LOAD) >= 0.0
        assert result.cpi >= 1.0

    def test_bpred_miss_component_uses_frontend_depth(self, dijkstra_trace):
        shallow = MachineConfig(pipeline_stages=5, name="shallow")
        deep = MachineConfig(pipeline_stages=9, name="deep")
        program = profile_program(dijkstra_trace)
        shallow_result = InOrderMechanisticModel(shallow).predict(
            program, profile_machine(dijkstra_trace, shallow)
        )
        deep_result = InOrderMechanisticModel(deep).predict(
            program, profile_machine(dijkstra_trace, deep)
        )
        assert (deep_result.stack.component(CPIComponent.BPRED_MISS)
                > shallow_result.stack.component(CPIComponent.BPRED_MISS))

    def test_l1_hit_extra_component_when_l1_is_slow(self, sha_trace):
        machine = MachineConfig(l1_hit_cycles=2, name="slow_l1")
        program = profile_program(sha_trace)
        misses = profile_machine(sha_trace, machine)
        result = InOrderMechanisticModel(machine).predict(program, misses)
        assert result.stack.component(CPIComponent.L1_HIT_EXTRA) > 0

    def test_predict_trace_convenience(self, sha_trace, default_machine):
        direct = InOrderMechanisticModel(default_machine).predict_trace(sha_trace)
        assert direct.cpi > 0

    def test_predict_workload_reuses_program_profile(self, sha_workload, default_machine):
        program = profile_program(sha_workload.trace())
        with_profile = predict_workload(sha_workload, default_machine, program=program)
        without_profile = predict_workload(sha_workload, default_machine)
        assert with_profile.cpi == pytest.approx(without_profile.cpi)


class TestModelAblations:
    def test_taken_branch_ablation(self, dijkstra_trace, default_machine):
        program = profile_program(dijkstra_trace)
        misses = profile_machine(dijkstra_trace, default_machine)
        with_penalty = InOrderMechanisticModel(default_machine).predict(program, misses)
        without_penalty = InOrderMechanisticModel(
            default_machine, include_taken_branch_penalty=False
        ).predict(program, misses)
        assert with_penalty.cycles > without_penalty.cycles
        assert without_penalty.stack.component(CPIComponent.BPRED_TAKEN) == 0.0

    def test_slot_correction_ablation(self, sha_trace, default_machine):
        program = profile_program(sha_trace)
        misses = profile_machine(sha_trace, default_machine)
        corrected = InOrderMechanisticModel(default_machine).predict(program, misses)
        uncorrected = InOrderMechanisticModel(
            default_machine, include_slot_correction=False
        ).predict(program, misses)
        # Dropping the (W-1)/2W correction makes every penalty slightly larger.
        assert uncorrected.cycles >= corrected.cycles

    def test_dependency_ablation(self, dijkstra_trace, default_machine):
        program = profile_program(dijkstra_trace)
        misses = profile_machine(dijkstra_trace, default_machine)
        full = InOrderMechanisticModel(default_machine).predict(program, misses)
        no_deps = InOrderMechanisticModel(
            default_machine, include_dependency_penalty=False
        ).predict(program, misses)
        assert full.cycles > no_deps.cycles
        assert no_deps.stack.component(CPIComponent.DEP_UNIT) == 0.0


class TestModelAccuracy:
    """Integration: the model must track the detailed simulator closely."""

    @pytest.mark.parametrize("name", ["sha", "dijkstra", "tiff2bw", "qsort", "gsm_c"])
    def test_default_config_error_within_bounds(self, name, default_machine):
        workload = get_workload(name)
        simulated = InOrderPipeline(default_machine).run(workload.trace())
        model = predict_workload(workload, default_machine)
        error = abs(model.cpi - simulated.cpi) / simulated.cpi
        assert error < 0.15, f"{name}: model {model.cpi:.3f} vs sim {simulated.cpi:.3f}"

    @pytest.mark.parametrize("width", [1, 2, 4])
    def test_width_sweep_error_within_bounds(self, width, default_machine):
        machine = default_machine.with_(width=width, name=f"w{width}")
        workload = get_workload("tiffdither")
        simulated = InOrderPipeline(machine).run(workload.trace())
        model = predict_workload(workload, machine)
        error = abs(model.cpi - simulated.cpi) / simulated.cpi
        assert error < 0.15

    def test_model_tracks_width_scaling_trend(self, default_machine):
        """CPI trends across width must match the simulator (Figure 4)."""
        workload = get_workload("sha")
        model_cpis, simulated_cpis = [], []
        for width in (1, 2, 4):
            machine = default_machine.with_(width=width, name=f"w{width}")
            model_cpis.append(predict_workload(workload, machine).cpi)
            simulated_cpis.append(InOrderPipeline(machine).run(workload.trace()).cpi)
        assert model_cpis[0] > model_cpis[1] > model_cpis[2]
        assert simulated_cpis[0] > simulated_cpis[1] > simulated_cpis[2]

    def test_dijkstra_saturates_with_width(self, default_machine):
        """Dependencies keep dijkstra from benefiting much beyond 2-wide."""
        workload = get_workload("dijkstra")
        cpi2 = predict_workload(workload, default_machine.with_(width=2, name="w2")).cpi
        cpi4 = predict_workload(workload, default_machine.with_(width=4, name="w4")).cpi
        assert (cpi2 - cpi4) / cpi2 < 0.10
