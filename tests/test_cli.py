"""CLI smoke suite: subcommands, formats, parallel runs and the warm cache.

The heavyweight checks mirror the acceptance criteria of the runtime
refactor: ``run all`` on the fast subset through a process pool produces
byte-identical tables to the serial run, and a second run against the same
``--cache-dir`` performs zero workload compilations and zero trace
generations.
"""

from __future__ import annotations

import json
import re

import pytest

from repro.cli import build_parser, main as cli_main
from repro.runtime import ExperimentResult, Session, experiment_names, run_experiment


def _sections(output: str) -> dict[str, str]:
    """Split ``=== name ===`` labelled CLI output into name → body."""
    parts = re.split(r"^=== (\S+) ===$", output, flags=re.MULTILINE)
    it = iter(parts[1:])  # parts[0] is anything before the first header
    return {name: body.strip("\n") for name, body in zip(it, it)}


@pytest.fixture(scope="module")
def cache_dir(tmp_path_factory):
    return tmp_path_factory.mktemp("artifact-cache")


@pytest.fixture(scope="module")
def smoke_outputs(cache_dir):
    """Cold parallel run, then warm serial run, of the full fast subset."""
    import contextlib
    import io

    outputs = {}
    for label, argv in (
        ("parallel_cold",
         ["run", "all", "--smoke", "--jobs", "2", "--cache-dir", str(cache_dir)]),
        ("serial_warm",
         ["run", "all", "--smoke", "--jobs", "1", "--cache-dir", str(cache_dir)]),
    ):
        stdout, stderr = io.StringIO(), io.StringIO()
        with contextlib.redirect_stdout(stdout), contextlib.redirect_stderr(stderr):
            exit_code = cli_main(argv)
        assert exit_code == 0
        outputs[label] = stdout.getvalue()
    return outputs


class TestParser:
    def test_run_defaults(self):
        args = build_parser().parse_args(["run"])
        assert args.experiments == ["all"]
        assert args.jobs == 1 and args.format == "text"
        assert args.cache_dir is None
        assert not args.full and not args.smoke

    def test_run_options(self):
        args = build_parser().parse_args(
            ["run", "figure5", "figure9", "--full", "--jobs", "4",
             "--format", "json", "--cache-dir", "/tmp/x"]
        )
        assert args.experiments == ["figure5", "figure9"]
        assert args.full and args.jobs == 4 and args.format == "json"

    def test_subcommand_required(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])


class TestVersionFlag:
    def test_version_prints_and_exits_cleanly(self, capsys):
        with pytest.raises(SystemExit) as info:
            cli_main(["--version"])
        assert info.value.code == 0
        out = capsys.readouterr().out
        assert re.match(r"repro-experiments \d+\.\d+\.\d+", out)


class TestServeParser:
    def test_serve_defaults(self):
        args = build_parser().parse_args(["serve"])
        assert args.host == "127.0.0.1" and args.port == 8765
        assert args.jobs == 1 and args.max_queue == 64
        assert args.cache_dir is None
        assert args.cache_capacity == 1024 and args.cache_ttl == 600.0

    def test_serve_options(self):
        args = build_parser().parse_args(
            ["serve", "--port", "0", "--jobs", "4", "--cache-dir", "/tmp/c",
             "--max-queue", "8", "--cache-ttl", "30"]
        )
        assert args.port == 0 and args.jobs == 4
        assert args.cache_dir == "/tmp/c" and args.max_queue == 8
        assert args.cache_ttl == 30.0

    def test_invalid_serve_values_exit_cleanly(self):
        with pytest.raises(SystemExit, match="ttl_seconds"):
            cli_main(["serve", "--cache-ttl", "0"])
        with pytest.raises(SystemExit, match="jobs"):
            cli_main(["serve", "--jobs", "0"])
        with pytest.raises(SystemExit, match="malformed size"):
            cli_main(["serve", "--cache-max-bytes", "nonsense"])


class TestCacheSubcommand:
    def test_reports_entries_bytes_and_versions(self, tmp_path, capsys):
        from repro.runtime import ArtifactCache

        cache = ArtifactCache(tmp_path)
        cache.store([1, 2, 3], "trace", workload="w", flags="O3",
                    trace_version=1)
        assert cli_main(["cache", "--cache-dir", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "trace" in out and "total" in out
        assert "trace_version=1" in out

    def test_clear_empties_the_directory(self, tmp_path, capsys):
        from repro.runtime import ArtifactCache

        cache = ArtifactCache(tmp_path)
        cache.store("value", "engine", workload="w", engine_version=2)
        assert cli_main(["cache", "--cache-dir", str(tmp_path),
                         "--clear"]) == 0
        assert "cleared 1 entries" in capsys.readouterr().out
        assert cache.disk_stats()["entries"] == 0

    def test_missing_directory_is_a_clean_error(self, tmp_path):
        with pytest.raises(SystemExit, match="not a directory"):
            cli_main(["cache", "--cache-dir", str(tmp_path / "nope")])


class TestBackendsListing:
    def test_backends_prints_capabilities_and_presets(self, capsys):
        assert cli_main(["eval", "--backends"]) == 0
        out = capsys.readouterr().out
        assert "analytical" in out and "simulator" in out
        # The preset table renders byte counts through format_size.
        assert "paper_default" in out
        assert "512KB" in out and "1MB" in out and "32KB" in out


class TestList:
    def test_list_text_shows_every_experiment(self, capsys):
        assert cli_main(["list"]) == 0
        out = capsys.readouterr().out
        for name in experiment_names():
            assert name in out

    def test_list_json_exposes_metadata(self, capsys):
        assert cli_main(["list", "--format", "json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        by_name = {entry["name"]: entry for entry in payload}
        assert set(by_name) == set(experiment_names())
        assert "full" in by_name["figure5"]["options"]
        assert by_name["speedup"]["deterministic"] is False


class TestRun:
    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit, match="unknown experiments"):
            cli_main(["run", "figure42"])

    def test_single_experiment_text(self, capsys):
        assert cli_main(["run", "table2"]) == 0
        out = capsys.readouterr().out
        assert out.startswith("=== table2 ===\n")
        assert "192 design points" in out

    def test_json_round_trips_through_experiment_result(self, cache_dir, capsys):
        argv = ["run", "figure3", "--smoke", "--format", "json",
                "--cache-dir", str(cache_dir)]
        assert cli_main(argv) == 0
        payload = json.loads(capsys.readouterr().out)
        assert isinstance(payload, list) and len(payload) == 1
        decoded = ExperimentResult.from_dict(payload[0])
        assert decoded.experiment == "figure3"
        # The serialization is loss-free...
        assert ExperimentResult.from_json(decoded.to_json()) == decoded
        # ...and matches an in-process run exactly (determinism).
        session = Session(cache_dir=cache_dir)
        rerun = run_experiment(session, "figure3", smoke=True)
        assert rerun == decoded

    def test_unsupported_override_is_an_error(self):
        with pytest.raises(ValueError, match="does not support"):
            run_experiment(Session(), "table2", overrides={"full": True})

    def test_single_experiment_csv_is_pure_csv(self, cache_dir, capsys):
        argv = ["run", "figure3", "--smoke", "--format", "csv",
                "--cache-dir", str(cache_dir)]
        assert cli_main(argv) == 0
        lines = capsys.readouterr().out.splitlines()
        # No section banner: the stream is directly machine-readable.
        assert lines[0] == "benchmark,model CPI,detailed CPI,error"
        assert len(lines) == 4  # header + three smoke benchmarks

    def test_multi_experiment_csv_uses_sections(self, cache_dir, capsys):
        argv = ["run", "table2", "figure3", "--smoke", "--format", "csv",
                "--cache-dir", str(cache_dir)]
        assert cli_main(argv) == 0
        sections = _sections(capsys.readouterr().out)
        assert set(sections) == {"table2", "figure3"}
        assert sections["figure3"].splitlines()[0].startswith("benchmark,")


class TestFastSubsetPipeline:
    """The acceptance-criteria checks (shared cold/warm CLI runs)."""

    def test_runs_cover_every_experiment(self, smoke_outputs):
        for output in smoke_outputs.values():
            assert set(_sections(output)) == set(experiment_names())

    def test_parallel_output_is_byte_identical_to_serial(self, smoke_outputs):
        cold = _sections(smoke_outputs["parallel_cold"])
        warm = _sections(smoke_outputs["serial_warm"])
        for name in experiment_names():
            if name == "speedup":  # wall-clock numbers, non-deterministic
                continue
            assert cold[name] == warm[name], f"{name} diverged"

    def test_warm_cache_run_regenerates_nothing(self, cache_dir, smoke_outputs):
        session = Session(cache_dir=cache_dir)
        results = [
            run_experiment(session, name, smoke=True)
            for name in experiment_names()
        ]
        assert len(results) == len(experiment_names())
        assert session.stats.workloads_compiled == 0
        assert session.stats.traces_generated == 0
        assert session.stats.trace_cache_hits > 0

    def test_warm_cache_results_match_cli_tables(self, cache_dir, smoke_outputs):
        from repro.runtime.reporters import render_text

        session = Session(cache_dir=cache_dir)
        rendered = render_text(run_experiment(session, "figure5", smoke=True))
        assert rendered == _sections(smoke_outputs["serial_warm"])["figure5"]
