"""Shared fixtures for the test suite.

Workload traces are expensive to produce (functional simulation in Python),
so the commonly used ones are session-scoped fixtures.
"""

from __future__ import annotations

import pytest

from repro.machine import MachineConfig
from repro.workloads import get_workload


@pytest.fixture(scope="session")
def default_machine() -> MachineConfig:
    return MachineConfig(name="default")


@pytest.fixture(scope="session")
def small_machine() -> MachineConfig:
    """A 2-wide, 5-stage machine used where the default would be overkill."""
    return MachineConfig(width=2, pipeline_stages=5, frequency_mhz=600, name="small")


@pytest.fixture(scope="session")
def sha_workload():
    return get_workload("sha")


@pytest.fixture(scope="session")
def dijkstra_workload():
    return get_workload("dijkstra")


@pytest.fixture(scope="session")
def sha_trace(sha_workload):
    return sha_workload.trace()


@pytest.fixture(scope="session")
def dijkstra_trace(dijkstra_workload):
    return dijkstra_workload.trace()
