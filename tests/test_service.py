"""The evaluation service: HTTP layer, cache, queue, server and client.

The acceptance-criteria checks live in :class:`TestServedEval`: a served
``POST /v1/eval`` body is byte-identical to the JSON of the same request
through ``repro.api.evaluate``, and a repeated identical request is
served from the warm result cache at least 10x faster than the cold
first hit.
"""

from __future__ import annotations

import asyncio
import json
import threading
import time

import pytest

from repro import api
from repro.service import (
    EvalExecutor,
    EvalServer,
    ResultCache,
    ServerThread,
    ServiceClient,
    ServiceConfig,
    ServiceError,
    ServiceMetrics,
    ServiceOverloaded,
    ServiceUnavailable,
    canonical_key,
    percentile,
)
from repro.service.http import HttpError, read_request, render_response


# ----------------------------------------------------------------------
# Unit layers (no sockets).
# ----------------------------------------------------------------------
class TestResultCache:
    def _cache(self, **kwargs):
        clock = {"now": 0.0}
        cache = ResultCache(clock=lambda: clock["now"], **kwargs)
        return cache, clock

    def test_hit_and_miss_counting(self):
        cache, _ = self._cache(capacity=4, ttl_seconds=10.0)
        assert cache.get("a") is None
        cache.put("a", b"1")
        assert cache.get("a") == b"1"
        assert cache.stats.hits == 1 and cache.stats.misses == 1
        assert cache.stats.hit_rate == pytest.approx(0.5)

    def test_entries_expire_after_ttl(self):
        cache, clock = self._cache(capacity=4, ttl_seconds=10.0)
        cache.put("a", b"1")
        clock["now"] = 9.999
        assert cache.get("a") == b"1"
        clock["now"] = 10.0
        assert cache.get("a") is None
        assert cache.stats.expirations == 1
        assert len(cache) == 0

    def test_least_recently_used_is_evicted_first(self):
        cache, _ = self._cache(capacity=2, ttl_seconds=10.0)
        cache.put("a", b"1")
        cache.put("b", b"2")
        assert cache.get("a") == b"1"  # touches "a": "b" is now LRU
        cache.put("c", b"3")
        assert cache.get("b") is None
        assert cache.get("a") == b"1" and cache.get("c") == b"3"
        assert cache.stats.evictions == 1

    def test_overwrite_refreshes_value_and_position(self):
        cache, _ = self._cache(capacity=2, ttl_seconds=10.0)
        cache.put("a", b"1")
        cache.put("b", b"2")
        cache.put("a", b"updated")  # "b" becomes LRU
        cache.put("c", b"3")
        assert cache.get("a") == b"updated"
        assert cache.get("b") is None

    def test_byte_budget_evicts_least_recently_used(self):
        cache, _ = self._cache(capacity=100, ttl_seconds=10.0, max_bytes=10)
        cache.put("a", b"xxxx")  # 4 bytes
        cache.put("b", b"xxxx")  # 8 bytes total
        cache.put("c", b"xxxx")  # 12 > 10: "a" is evicted
        assert cache.get("a") is None
        assert cache.get("b") == b"xxxx" and cache.get("c") == b"xxxx"
        assert cache.total_bytes == 8
        assert cache.stats.evictions == 1

    def test_oversized_body_is_not_cached(self):
        cache, _ = self._cache(capacity=100, ttl_seconds=10.0, max_bytes=4)
        cache.put("small", b"ok")
        cache.put("big", b"x" * 5)  # larger than the whole budget: skipped
        assert cache.get("big") is None
        assert cache.get("small") == b"ok"  # nothing was evicted for it
        assert len(cache) == 1

    def test_byte_accounting_tracks_overwrites_and_expiry(self):
        cache, clock = self._cache(capacity=4, ttl_seconds=10.0, max_bytes=100)
        cache.put("a", b"12345678")
        cache.put("a", b"12")  # overwrite shrinks the footprint
        assert cache.total_bytes == 2
        clock["now"] = 10.0
        assert cache.get("a") is None  # expiry releases the bytes
        assert cache.total_bytes == 0

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            ResultCache(capacity=0)
        with pytest.raises(ValueError):
            ResultCache(ttl_seconds=0)
        with pytest.raises(ValueError):
            ResultCache(max_bytes=0)

    def test_canonical_key_is_order_insensitive(self):
        assert (canonical_key({"b": 1, "a": [1, 2]})
                == canonical_key({"a": [1, 2], "b": 1}))
        assert canonical_key({"a": 1}) != canonical_key({"a": 2})


class TestMetrics:
    def test_percentile_nearest_rank(self):
        values = [10.0, 20.0, 30.0, 40.0, 50.0]
        assert percentile(values, 50) == 30.0
        assert percentile(values, 90) == 50.0
        assert percentile(values, 99) == 50.0
        assert percentile([7.0], 50) == 7.0
        with pytest.raises(ValueError):
            percentile([], 50)
        with pytest.raises(ValueError):
            percentile(values, 0)

    def test_snapshot_counts_and_latencies(self):
        metrics = ServiceMetrics()
        for seconds in (0.010, 0.020, 0.030):
            metrics.observe("POST /v1/eval", 200, seconds)
        metrics.observe("POST /v1/eval", 400, 0.001)
        metrics.count_evaluations(3)
        snapshot = metrics.snapshot()
        assert snapshot["requests_total"] == 4
        assert snapshot["evaluations_total"] == 3
        assert snapshot["responses"] == {"200": 3, "400": 1}
        endpoint = snapshot["endpoints"]["POST /v1/eval"]
        assert endpoint["count"] == 4 and endpoint["errors"] == 1
        assert endpoint["latency_ms"]["p50"] == pytest.approx(10.0)


class TestHttpPlumbing:
    def _parse(self, raw: bytes):
        async def run():
            reader = asyncio.StreamReader()
            reader.feed_data(raw)
            reader.feed_eof()
            return await read_request(reader)

        return asyncio.run(run())

    def test_parses_post_with_body(self):
        request = self._parse(
            b"POST /v1/eval?x=1 HTTP/1.1\r\n"
            b"Content-Type: application/json\r\n"
            b"Content-Length: 4\r\n\r\nbody"
        )
        assert request.method == "POST"
        assert request.path == "/v1/eval"
        assert request.headers["content-type"] == "application/json"
        assert request.body == b"body"

    def test_closed_peer_returns_none(self):
        assert self._parse(b"") is None

    def test_malformed_request_line_is_400(self):
        with pytest.raises(HttpError) as info:
            self._parse(b"NONSENSE\r\n\r\n")
        assert info.value.status == 400

    def test_bad_content_length_is_400(self):
        with pytest.raises(HttpError) as info:
            self._parse(b"POST / HTTP/1.1\r\nContent-Length: ZZZ\r\n\r\n")
        assert info.value.status == 400

    def test_oversized_request_line_is_431_not_500(self):
        # Longer than StreamReader's 64KB line limit: must map to a clean
        # 431, not escape as a ValueError the server reports as a 500.
        with pytest.raises(HttpError) as info:
            self._parse(b"GET /" + b"x" * (70 * 1024) + b" HTTP/1.1\r\n\r\n")
        assert info.value.status == 431

    def test_oversized_header_line_is_431(self):
        raw = (b"GET / HTTP/1.1\r\nx-padding: " + b"y" * (70 * 1024)
               + b"\r\n\r\n")
        with pytest.raises(HttpError) as info:
            self._parse(raw)
        assert info.value.status == 431

    def test_response_bytes_are_complete_http(self):
        raw = render_response(200, b'{"ok": true}')
        head, _, body = raw.partition(b"\r\n\r\n")
        assert head.startswith(b"HTTP/1.1 200 OK\r\n")
        assert b"Content-Length: 12" in head
        assert b"Connection: close" in head
        assert body == b'{"ok": true}'


class TestExecutor:
    """Queue bounds and drain, with an injected (controllable) runner."""

    def test_bounded_queue_overload_and_drain(self):
        release = threading.Event()
        processed = []

        def runner(requests):
            release.wait(timeout=10)
            processed.append(len(requests))
            return list(requests)

        async def scenario():
            executor = EvalExecutor(session=None, jobs=1, max_queue=1,
                                    runner=runner)
            executor.start()
            first = executor.submit(["a"])    # picked up by the worker
            await asyncio.sleep(0.05)         # let the worker dequeue it
            second = executor.submit(["b"])   # fills the bounded queue
            with pytest.raises(ServiceOverloaded):
                executor.submit(["c"])        # queue full -> backpressure
            release.set()
            results = await asyncio.gather(first, second)
            await executor.drain()            # drains cleanly, workers gone
            return results

        results = asyncio.run(scenario())
        assert results == [["a"], ["b"]]
        assert processed == [1, 1]

    def test_runner_exception_surfaces_on_future(self):
        def runner(requests):
            raise RuntimeError("boom")

        async def scenario():
            executor = EvalExecutor(session=None, jobs=1, max_queue=4,
                                    runner=runner)
            executor.start()
            with pytest.raises(RuntimeError, match="boom"):
                await executor.submit(["a"])
            await executor.drain()

        asyncio.run(scenario())

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            EvalExecutor(session=None, jobs=0)
        with pytest.raises(ValueError):
            EvalExecutor(session=None, max_queue=0)

    def test_drain_finishes_backlog_even_after_workers_were_cancelled(self):
        """Python 3.10's asyncio.run cancels *all* tasks on Ctrl-C.

        drain() must not wait on dead workers: it processes the queued
        jobs inline, so the graceful-shutdown contract (no accepted
        request dropped, no hang) holds on every supported Python.
        """

        async def scenario():
            executor = EvalExecutor(session=None, jobs=2, max_queue=4,
                                    runner=lambda requests: list(requests))
            executor.start()
            # Kill the workers out from under the executor, as the 3.10
            # event-loop teardown would.
            for worker in executor._workers:
                worker.cancel()
            await asyncio.gather(*executor._workers, return_exceptions=True)
            future = executor.submit(["a"])
            await asyncio.wait_for(executor.drain(), timeout=10)
            return await future

        assert asyncio.run(scenario()) == ["a"]


# ----------------------------------------------------------------------
# Live server (module-scoped: one server for every HTTP test).
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def server(tmp_path_factory):
    config = ServiceConfig(
        port=0, jobs=2, max_queue=16,
        cache_dir=str(tmp_path_factory.mktemp("service-cache")),
    )
    with ServerThread(config) as running:
        yield running


@pytest.fixture(scope="module")
def client(server):
    client = ServiceClient(port=server.port)
    client.wait_ready()
    return client


class TestServedEval:
    def test_response_is_byte_identical_to_direct_api_call(self, client):
        request = {"workload": "sha", "machine": {"l2_size": "1MB"},
                   "backend": "analytical", "tag": "equivalence"}
        served = client.evaluate_raw(request)
        direct = api.evaluate(api.EvalRequest.parse(request)).to_json()
        assert served == direct.encode("utf-8")

    def test_warm_repeat_is_at_least_10x_faster_than_cold(self, client):
        # A request nothing else in this module issues, so the first hit
        # pays compilation, trace generation and profiling.
        request = {"workload": "dijkstra",
                   "machine": {"preset": "mid_7stage_800mhz",
                               "l2_size": "256KB"}}
        start = time.perf_counter()
        cold_body = client.evaluate_raw(request)
        cold = time.perf_counter() - start

        warm_times = []
        for _ in range(5):
            start = time.perf_counter()
            warm_body = client.evaluate_raw(request)
            warm_times.append(time.perf_counter() - start)
            assert warm_body == cold_body  # cache returns the same bytes
        warm = min(warm_times)
        assert cold >= 10 * warm, (
            f"warm hit not 10x faster: cold={cold * 1000:.2f} ms, "
            f"warm={warm * 1000:.2f} ms"
        )

    def test_tag_and_request_round_trip_through_result(self, client):
        result = client.evaluate({"workload": "sha", "tag": "corr-42"})
        assert result.request.tag == "corr-42"
        assert result.workload == "sha"
        assert result.cycles > 0 and result.cpi > 0

    def test_sweep_matches_in_process_evaluate_many(self, client):
        sweep = {"workloads": ["sha"],
                 "axes": {"l2_size": ["256KB", "1MB"]}}
        served = client.sweep(sweep)
        direct = api.evaluate_many(api.SweepRequest.from_dict(sweep).expand())
        assert [r.to_dict() for r in served] == [r.to_dict() for r in direct]
        assert [r.machine for r in served] == ["l2_size=256KB", "l2_size=1MB"]

    def test_unknown_workload_is_400_listing_choices(self, client):
        with pytest.raises(ServiceError) as info:
            client.evaluate({"workload": "nonesuch"})
        assert info.value.status == 400
        assert "unknown workload" in info.value.message
        assert "sha" in info.value.message  # valid choices are listed

    def test_unknown_preset_is_400_listing_choices(self, client):
        with pytest.raises(ServiceError) as info:
            client.evaluate({"workload": "sha", "machine": "warp_drive"})
        assert info.value.status == 400
        assert "paper_default" in info.value.message

    def test_malformed_json_is_400(self, client):
        status, body = client._request("POST", "/v1/eval", b"{not json")
        assert status == 400
        assert "not valid JSON" in json.loads(body)["error"]

    def test_unknown_path_is_404(self, client):
        status, body = client._request("GET", "/v2/nope")
        assert status == 404
        assert "/v1/eval" in json.loads(body)["error"]

    def test_wrong_method_is_405(self, client):
        status, _ = client._request("GET", "/v1/eval")
        assert status == 405

    def test_silent_connections_are_released_and_not_counted(self, server,
                                                             client):
        import socket

        before = client.metrics()["requests_total"]
        # Liveness-probe behaviour: connect, send nothing, disconnect.
        for _ in range(3):
            probe = socket.create_connection(("127.0.0.1", server.port),
                                             timeout=5)
            probe.close()
        after = client.metrics()["requests_total"]
        # Only the metrics call itself was counted; the server kept working.
        assert after == before + 1
        assert client.health()["status"] == "ok"

    def test_unknown_endpoints_bucket_under_one_metric_label(self, client):
        # Path scans must not grow the metrics tables without bound.
        for path in ("/scan/1", "/scan/2", "/scan/3"):
            status, _ = client._request("GET", path)
            assert status == 404
        endpoints = client.metrics()["endpoints"]
        assert not any(name.endswith("/scan/1") for name in endpoints)
        assert endpoints["other"]["count"] >= 3

    def test_io_deadlines_are_configured(self, server):
        # Both directions are bounded: a peer that never sends a request
        # and a peer that never reads its response each get dropped, so
        # the drain can always finish.
        assert server.config.read_timeout > 0
        assert server.config.write_timeout > 0

    def test_health_reports_server_shape(self, client, server):
        health = client.health()
        assert health["status"] == "ok"
        assert health["jobs"] == 2 and health["max_queue"] == 16
        assert health["queue_depth"] == 0
        assert health["uptime_seconds"] >= 0

    def test_metrics_report_traffic_and_cache(self, client):
        client.evaluate({"workload": "sha"})
        client.evaluate({"workload": "sha"})  # guaranteed cache hit
        metrics = client.metrics()
        assert metrics["requests_total"] >= 2
        assert metrics["evaluations_total"] >= 1
        assert metrics["cache"]["hits"] >= 1
        assert 0 < metrics["cache"]["hit_rate"] <= 1
        eval_endpoint = metrics["endpoints"]["POST /v1/eval"]
        assert eval_endpoint["count"] >= 2
        assert eval_endpoint["latency_ms"]["p50"] > 0
        assert metrics["queue"]["max"] == 16
        assert metrics["session"]["workloads_compiled"] >= 1

    def test_metrics_report_dataplane_and_stage_breakdown(self, client):
        client.sweep({"workloads": ["sha"],
                      "axes": {"l1d_size": ["4KB", "8KB"]}})
        metrics = client.metrics()
        assert metrics["dataplane"] in ("shm", "payload")
        assert metrics["session"]["dataplane"] == metrics["dataplane"]
        stages = metrics["session"]["stages"]
        assert isinstance(stages, dict)
        # The sharded sweep above accounted its wall time to the stages.
        assert {"profile", "model", "collect"} <= set(stages)

    def test_distinct_sweeps_share_one_warm_worker_pool(self, client,
                                                        server):
        """Request N+1 pays zero pool spawn (the pool-churn regression).

        Two *different* sweeps (no result-cache hit possible) against the
        jobs=2 server must run through the same persistent worker pool,
        and the warm one — no pool spawn, no compilation, traces already
        adopted by the workers — must not be slower than the cold one.
        """
        from repro.runtime.scheduler import WorkerPool

        session = server.server.session
        start = time.perf_counter()
        client.sweep({"workloads": ["qsort"],
                      "axes": {"l2_size": ["256KB", "1MB"]}})
        cold = time.perf_counter() - start
        pool = session._pool
        created = WorkerPool.created_total
        assert pool is not None and pool.alive

        start = time.perf_counter()
        client.sweep({"workloads": ["qsort"],
                      "axes": {"l2_size": ["128KB", "512KB"]}})
        warm = time.perf_counter() - start
        assert session._pool is pool  # same pool object, still alive
        assert WorkerPool.created_total == created  # zero new pools
        assert warm < cold, (
            f"warm sweep slower than cold: warm={warm * 1000:.1f} ms, "
            f"cold={cold * 1000:.1f} ms"
        )


class TestShutdown:
    def test_drain_finishes_in_flight_work_then_closes_port(self, tmp_path):
        config = ServiceConfig(port=0, jobs=1, cache_dir=str(tmp_path))
        running = ServerThread(config)
        running.start()
        client = ServiceClient(port=running.port)
        client.wait_ready()

        # An uncached sweep (real work) issued just before shutdown...
        outcome: dict = {}

        def slow_request():
            try:
                outcome["results"] = client.sweep(
                    {"workloads": ["qsort"],
                     "axes": {"l2_size": ["128KB", "512KB", "2MB"]}}
                )
            except Exception as exc:  # pragma: no cover - failure detail
                outcome["error"] = exc

        thread = threading.Thread(target=slow_request)
        thread.start()
        time.sleep(0.05)  # let the request reach the queue
        running.stop()    # graceful drain
        thread.join(timeout=30)

        # ...still completes with a full answer: drained, not dropped.
        assert "error" not in outcome, outcome.get("error")
        assert len(outcome["results"]) == 3

        # And the listener is really gone: the client reports the refused
        # connection as the retryable ServiceUnavailable.
        with pytest.raises(ServiceUnavailable):
            ServiceClient(port=running.port, timeout=2.0).health()

    def test_stop_is_idempotent(self, tmp_path):
        running = ServerThread(ServiceConfig(port=0, cache_dir=str(tmp_path)))
        running.start()
        running.stop()
        running.stop()  # second stop is a no-op

    def test_failed_start_surfaces_bind_error_and_stop_is_noop(self, server):
        running = ServerThread(ServiceConfig(port=server.port))  # taken
        with pytest.raises(OSError):
            running.start()
        running.stop()  # must not mask the error with a closed-loop crash

    def test_invalid_config_raises_from_start_instead_of_hanging(self):
        running = ServerThread(ServiceConfig(port=0, cache_ttl=0))
        with pytest.raises(ValueError, match="ttl_seconds"):
            running.start()
        running.stop()

    def test_failed_bind_still_tears_down_the_executor(self, server):
        async def scenario():
            failed = EvalServer(ServiceConfig(port=server.port))  # taken
            with pytest.raises(OSError):
                await failed.start()
            await failed.stop()
            # The worker tasks and thread pool launched by start() are gone.
            assert failed.executor._queue is None
            assert failed.executor._pool is None
            assert failed.executor._workers == []

        asyncio.run(scenario())

    def test_stop_is_not_stalled_by_an_idle_open_connection(self, tmp_path):
        import socket

        running = ServerThread(ServiceConfig(port=0, cache_dir=str(tmp_path)))
        running.start()
        ServiceClient(port=running.port).wait_ready()
        # A liveness probe that connects and just sits there: it holds no
        # accepted work, so the drain cancels it instead of waiting.
        probe = socket.create_connection(("127.0.0.1", running.port),
                                         timeout=5)
        try:
            start = time.perf_counter()
            running.stop()
            assert time.perf_counter() - start < 5.0
        finally:
            probe.close()


class TestSessionProvisioning:
    def test_sharded_server_auto_provisions_a_shared_cache_dir(self):
        # jobs > 1 without a cache_dir: pool workers must share state, so
        # the server gets a temporary artifact-cache directory for its
        # lifetime (exactly the run/eval pooled_session behaviour)...
        server = EvalServer(ServiceConfig(port=0, jobs=2))
        cache_root = server.session.cache.root
        assert server.session.cache.enabled
        assert cache_root.is_dir()
        asyncio.run(server.stop())
        assert not cache_root.exists()  # released with the server

    def test_serial_server_defaults_to_in_memory_session(self):
        server = EvalServer(ServiceConfig(port=0, jobs=1))
        assert not server.session.cache.enabled
        asyncio.run(server.stop())

    def test_explicit_cache_dir_is_used_and_kept(self, tmp_path):
        server = EvalServer(ServiceConfig(port=0, jobs=2,
                                          cache_dir=str(tmp_path)))
        assert server.session.cache.root == tmp_path
        asyncio.run(server.stop())
        assert tmp_path.is_dir()  # a caller-owned directory is not deleted
