"""Objectives, constraints and Pareto-front extraction (repro.search).

Property-based checks pin the front's defining invariants — no dominated
point is ever in the front, the front *set* is invariant under
permutation and duplication of the input, ties resolve deterministically
— next to a hand-checked two-objective fixture small enough to verify on
paper.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.api.spec import EvalRequest, EvalResult, MachineSpec, WorkloadSpec
from repro.search import (
    Constraint,
    Objective,
    dominates,
    needs_power,
    pareto_front,
    pareto_indices,
    split_constraints,
)


def _result(cycles: float = 150.0, instructions: int = 100,
            energy: float | None = None, **machine_overrides) -> EvalResult:
    request = EvalRequest(
        workload=WorkloadSpec("sha"),
        machine=MachineSpec.make(**machine_overrides),
    )
    machine = request.machine.resolve()
    seconds = cycles * machine.cycle_ns * 1e-9
    return EvalResult(
        request=request, backend="analytical", workload="sha",
        machine=machine.name or "paper_default", instructions=instructions,
        cycles=cycles, seconds=seconds,
        cpi_stack={"base": cycles * 0.6, "l2": cycles * 0.4},
        energy_joules=energy,
    )


# ----------------------------------------------------------------------
# Objectives.
# ----------------------------------------------------------------------
class TestObjective:
    def test_parse_forms(self):
        assert Objective.parse("edp") == Objective("edp", "min")
        assert Objective.parse("max:ipc") == Objective("ipc", "max")
        assert Objective.parse({"metric": "cpi", "goal": "max"}) == \
            Objective("cpi", "max")
        parsed = Objective.parse(Objective("cycles"))
        assert parsed == Objective("cycles")

    def test_parse_rejects_bad_goal_and_unknown_keys(self):
        with pytest.raises(ValueError, match="'min' or 'max'"):
            Objective.parse("best:cpi")
        with pytest.raises(ValueError, match="unknown objective keys"):
            Objective.parse({"metric": "cpi", "direction": "min"})

    def test_max_objective_negates_key(self):
        result = _result(cycles=200.0, instructions=100)
        objective = Objective.parse("max:ipc")
        assert objective.value(result) == pytest.approx(0.5)
        assert objective.key(result) == pytest.approx(-0.5)

    def test_str_round_trips_through_parse(self):
        for text in ("cpi", "max:ipc", "cpi_stack.l2", "machine.l2_size"):
            assert str(Objective.parse(text)) == text

    def test_needs_power(self):
        assert needs_power([Objective("edp")])
        assert needs_power([Objective("cpi")],
                           [Constraint.parse("energy<=0.5")])
        assert not needs_power([Objective("cpi")],
                               [Constraint.parse("l2_size<=1MB")])


# ----------------------------------------------------------------------
# Constraints.
# ----------------------------------------------------------------------
class TestConstraint:
    def test_size_grammar_on_machine_field(self):
        constraint = Constraint.parse("l2_size<=1MB")
        assert constraint.on_machine
        assert constraint.value == 1024 * 1024
        assert constraint.admits_value(512 * 1024)
        assert not constraint.admits_value(2 * 1024 * 1024)
        # Candidate values spelled as size strings compare in bytes.
        assert constraint.admits_value("512KB")
        assert not constraint.admits_value("2MB")

    def test_machine_prefix_is_stripped(self):
        constraint = Constraint.parse("machine.width>=2")
        assert constraint.path == "width" and constraint.on_machine

    def test_metric_constraint_applies_to_results(self):
        constraint = Constraint.parse("cpi<1.8")
        assert not constraint.on_machine
        assert constraint.admits_result(_result(cycles=150.0))  # cpi 1.5
        assert not constraint.admits_result(_result(cycles=200.0))

    def test_string_equality_allowed_ordering_rejected(self):
        constraint = Constraint.parse("branch_predictor==hybrid_3.5kb")
        assert constraint.admits_value("hybrid_3.5kb")
        assert not constraint.admits_value("global_1kb")
        with pytest.raises(ValueError, match="ordering comparison"):
            Constraint.parse("branch_predictor<=hybrid_3.5kb")

    def test_malformed_constraint_names_the_grammar(self):
        with pytest.raises(ValueError, match="expected 'path OP value'"):
            Constraint.parse("l2_size")

    def test_admits_machine_and_area_proxy(self):
        machine = MachineSpec.make().resolve()
        assert Constraint.parse("l2_size<=1MB").admits_machine(machine)
        assert Constraint.parse("area_proxy<=1000").admits_machine(machine)
        with pytest.raises(ValueError, match="not a machine parameter"):
            Constraint.parse("cpi<1.8").admits_machine(machine)

    def test_split_preserves_order(self):
        parsed = [Constraint.parse(text) for text in
                  ("cpi<2", "l2_size<=1MB", "width>=2", "edp<1e-9")]
        machine, metric = split_constraints(parsed)
        assert [c.source for c in machine] == ["l2_size<=1MB", "width>=2"]
        assert [c.source for c in metric] == ["cpi<2", "edp<1e-9"]


# ----------------------------------------------------------------------
# Pareto extraction: hand-checked fixture.
# ----------------------------------------------------------------------
class TestParetoFixture:
    #: (cpi, energy) points: a is dominated by b; b, c, e are the front
    #: (e duplicates c and must survive); d is dominated by c/e.
    VECTORS = [
        (2.0, 5.0),   # a: dominated by b (worse on both)
        (1.5, 4.0),   # b: front
        (1.0, 6.0),   # c: front (best cpi)
        (1.2, 6.5),   # d: dominated by c (and e)
        (1.0, 6.0),   # e: duplicate of c — must also survive
        (3.0, 3.0),   # f: front (best energy)
    ]

    def test_hand_checked_front(self):
        assert pareto_indices(self.VECTORS) == [1, 2, 4, 5]

    def test_dominates_is_strict(self):
        assert dominates((1.0, 4.0), (1.5, 4.0))
        assert not dominates((1.0, 6.0), (1.0, 6.0))  # equal: no dominance
        assert not dominates((1.0, 7.0), (1.5, 4.0))  # trade-off

    def test_single_objective_front_is_the_tied_minimum(self):
        assert pareto_indices([(2.0,), (1.0,), (1.0,), (3.0,)]) == [1, 2]

    def test_pareto_front_over_results(self):
        results = [_result(cycles=c, energy=e) for c, e in
                   ((200.0, 0.5), (150.0, 0.9), (120.0, 1.4))]
        # (cpi, energy): (2.0, .5), (1.5, .9), (1.2, 1.4) — all trade off.
        assert pareto_front(results, ["cpi", "energy"]) == [0, 1, 2]
        # Minimizing cpi alone: only the fastest survives.
        assert pareto_front(results, ["cpi"]) == [2]
        # Maximizing cpi flips it.
        assert pareto_front(results, ["max:cpi"]) == [0]

    def test_pareto_front_needs_objectives(self):
        with pytest.raises(ValueError, match="at least one objective"):
            pareto_front([_result()], [])


# ----------------------------------------------------------------------
# Pareto extraction: properties.
# ----------------------------------------------------------------------
vectors_strategy = st.lists(
    st.tuples(st.integers(-20, 20), st.integers(-20, 20),
              st.integers(-20, 20)),
    min_size=1, max_size=40,
)


class TestParetoProperties:
    @given(vectors=vectors_strategy)
    @settings(max_examples=80, deadline=None)
    def test_no_front_member_is_dominated(self, vectors):
        front = pareto_indices(vectors)
        assert front  # at least one point is always non-dominated
        for index in front:
            assert not any(dominates(vectors[other], vectors[index])
                           for other in range(len(vectors)))

    @given(vectors=vectors_strategy)
    @settings(max_examples=80, deadline=None)
    def test_every_non_member_is_dominated(self, vectors):
        front = set(pareto_indices(vectors))
        for index in range(len(vectors)):
            if index not in front:
                assert any(dominates(vectors[other], vectors[index])
                           for other in range(len(vectors)))

    @given(vectors=vectors_strategy, seed=st.integers(0, 2**16))
    @settings(max_examples=80, deadline=None)
    def test_front_set_invariant_under_permutation(self, vectors, seed):
        import random

        order = list(range(len(vectors)))
        random.Random(seed).shuffle(order)
        shuffled = [vectors[i] for i in order]
        original = {tuple(vectors[i]) for i in pareto_indices(vectors)}
        permuted = {tuple(shuffled[i]) for i in pareto_indices(shuffled)}
        assert original == permuted

    @given(vectors=vectors_strategy)
    @settings(max_examples=80, deadline=None)
    def test_front_set_invariant_under_duplication(self, vectors):
        doubled = vectors + vectors
        original = {tuple(vectors[i]) for i in pareto_indices(vectors)}
        duplicated = {tuple(doubled[i]) for i in pareto_indices(doubled)}
        assert original == duplicated
        # Every copy of a front point survives.
        front = pareto_indices(doubled)
        for index in front:
            twin = (index + len(vectors)) % len(doubled)
            assert twin in front

    @given(vectors=vectors_strategy)
    @settings(max_examples=80, deadline=None)
    def test_deterministic_and_ascending(self, vectors):
        first = pareto_indices(vectors)
        assert first == pareto_indices(vectors)
        assert first == sorted(first)
