"""Streamed (chunk-resumable) profiling is bit-identical to in-memory.

The contract under test: for any chunk geometry — including one-row
chunks and a single chunk larger than the trace — both kernel backends'
chunk-resumable streams produce byte-for-byte the counts the in-memory
:class:`~repro.profiler.single_pass_engine.SinglePassEngine` computes on
the concatenated trace, for every registered branch predictor.
"""

from __future__ import annotations

import dataclasses

import pytest

from repro import accel
from repro.branch.predictors import PREDICTORS
from repro.core.model import InOrderMechanisticModel
from repro.machine import DEFAULT_MACHINE, MachineConfig
from repro.profiler.program import profile_program
from repro.profiler.single_pass_engine import SinglePassEngine
from repro.profiler.streaming import StreamingEngine
from repro.trace.trace import ChunkedTrace
from repro.workloads import get_workload
from repro.workloads.registry import MIBENCH_BUILDERS
from repro.workloads.synthetic import (
    SyntheticWorkloadSpec,
    generate_synthetic_trace,
)

BACKENDS = ("python", "numpy")


@pytest.fixture(autouse=True)
def _restore_backend():
    yield
    accel.set_backend("auto")


def _use_backend(backend: str):
    if backend == "numpy":
        pytest.importorskip("repro.accel.np_kernels",
                            reason="NumPy backend not installed")
    accel.set_backend(backend)


def _counts(profile) -> dict[str, int]:
    return {
        field.name: getattr(profile, field.name)
        for field in dataclasses.fields(profile)
        if field.name != "machine"
    }


SMALL = generate_synthetic_trace(
    SyntheticWorkloadSpec(instructions=2_000, seed=41)
)

#: A second geometry so L2/TLB/predictor state carry is exercised off the
#: defaults too.
OFF_SPACE = MachineConfig(
    name="off_space", l1i_size=8 * 1024, l1d_size=8 * 1024,
    l1d_associativity=2, l2_size=128 * 1024, tlb_entries=8,
    branch_predictor="bimodal",
)


@pytest.mark.parametrize("backend", BACKENDS)
@pytest.mark.parametrize("chunk_length", [1, 13, 700, 2_001])
def test_streamed_profile_bit_identical(backend, chunk_length):
    _use_backend(backend)
    chunked = ChunkedTrace.from_trace(SMALL, chunk_length)
    streaming = StreamingEngine(chunked)
    reference = SinglePassEngine.for_trace(SMALL)
    for machine in (DEFAULT_MACHINE, OFF_SPACE):
        assert (_counts(streaming.miss_profile(machine))
                == _counts(reference.miss_profile(machine)))
    assert streaming.program_profile() == profile_program(SMALL)


@pytest.mark.parametrize("backend", BACKENDS)
@pytest.mark.parametrize("name", sorted(MIBENCH_BUILDERS))
def test_streamed_matches_in_memory_on_mibench(name, backend):
    _use_backend(backend)
    trace = get_workload(name).trace()
    chunked = ChunkedTrace.from_trace(trace, 1024)
    streaming = StreamingEngine.for_chunked(chunked)
    reference = SinglePassEngine.for_trace(trace)
    streamed = streaming.miss_profile(DEFAULT_MACHINE)
    exact = reference.miss_profile(DEFAULT_MACHINE)
    assert _counts(streamed) == _counts(exact)
    # ...and therefore the model's prediction is bit-identical too.
    program = streaming.program_profile()
    model = InOrderMechanisticModel(DEFAULT_MACHINE)
    assert (model.predict(program, streamed).cycles
            == model.predict(profile_program(trace), exact).cycles)


@pytest.mark.parametrize("backend", BACKENDS)
@pytest.mark.parametrize("predictor", PREDICTORS.names())
def test_every_registered_predictor_streams_exactly(backend, predictor):
    _use_backend(backend)
    machine = MachineConfig(name=f"bp_{predictor}",
                            branch_predictor=predictor)
    chunked = ChunkedTrace.from_trace(SMALL, 333)
    streamed = StreamingEngine(chunked).miss_profile(machine)
    exact = SinglePassEngine.for_trace(SMALL).miss_profile(machine)
    for metric in ("mispredictions", "taken_bubbles",
                   "conditional_branches"):
        assert getattr(streamed, metric) == getattr(exact, metric)


def test_one_walk_covers_a_design_space():
    chunked = ChunkedTrace.from_trace(SMALL, 500)
    engine = StreamingEngine(chunked)
    machines = [DEFAULT_MACHINE, OFF_SPACE,
                MachineConfig(name="wide", width=4, l2_associativity=16)]
    engine.profile_machines(machines)
    assert engine.walks == 1
    # Everything is answered from the cached passes afterwards.
    engine.profile_machines(machines)
    engine.miss_profile(OFF_SPACE)
    assert engine.walks == 1


def test_state_export_install_round_trip():
    chunked = ChunkedTrace.from_trace(SMALL, 500)
    warm = StreamingEngine(chunked)
    expected = _counts(warm.miss_profile(DEFAULT_MACHINE))
    warm.program_profile()
    assert warm.walks >= 1

    cold = StreamingEngine(ChunkedTrace.from_trace(SMALL, 500))
    cold.install_state(warm.export_state())
    assert _counts(cold.miss_profile(DEFAULT_MACHINE)) == expected
    assert cold.program_profile() == warm.program_profile()
    assert cold.walks == 0


def test_for_chunked_memoizes_engine():
    chunked = ChunkedTrace.from_trace(SMALL, 500)
    assert (StreamingEngine.for_chunked(chunked)
            is StreamingEngine.for_chunked(chunked))
