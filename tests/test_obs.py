"""The observability layer: spans, metrics registry, logger and report.

The acceptance-criteria checks: a trace context survives the WorkerPool's
crash-reset-and-retry path (worker spans after a SIGKILL still land in
the parent's tree), and evaluation output is byte-identical with tracing
on and off — on both kernel backends and both data planes.
"""

from __future__ import annotations

import json
import os
import signal

import pytest

import repro.accel as accel
from repro.api import EvalRequest, MachineSpec, WorkloadSpec, evaluate_many
from repro.machine import DEFAULT_MACHINE
from repro.obs import tracing
from repro.obs.log import Logger
from repro.obs.metrics import (
    MetricsRegistry,
    percentile,
    render_prometheus,
)
from repro.obs.report import (
    load_events,
    render_report,
    summarize,
    to_chrome_trace,
)
from repro.obs.tracing import TraceContext
from repro.runtime import dataplane
from repro.runtime.session import pooled_session


@pytest.fixture(autouse=True)
def _tracing_disabled_after():
    """Every test leaves tracing off and the env unset, however it exits."""
    yield
    tracing.configure(None)
    os.environ.pop(tracing.TRACE_ENV, None)


def _events(path) -> list[dict]:
    with open(path, encoding="utf-8") as fh:
        return [json.loads(line) for line in fh if line.strip()]


# ----------------------------------------------------------------------
# Trace context.
# ----------------------------------------------------------------------
class TestTraceContext:
    def test_header_round_trip(self):
        ctx = TraceContext("abc123", "def456")
        assert TraceContext.from_header(ctx.to_header()) == ctx

    def test_header_with_trace_id_only(self):
        parsed = TraceContext.from_header("deadbeef")
        assert parsed == TraceContext("deadbeef", "")

    @pytest.mark.parametrize("header", [
        "", ":", "a:b:c", "bad id:x", "<script>:x", "a" * 65,
    ])
    def test_malformed_headers_are_rejected(self, header):
        assert TraceContext.from_header(header) is None

    def test_wire_round_trip(self):
        ctx = TraceContext("t", "s")
        assert TraceContext.from_wire(ctx.to_wire()) == ctx
        assert TraceContext.from_wire(None) is None


# ----------------------------------------------------------------------
# Spans.
# ----------------------------------------------------------------------
class TestSpans:
    def test_disabled_span_is_shared_noop(self):
        tracing.configure(None)
        assert not tracing.enabled()
        first = tracing.span("a", x=1)
        second = tracing.span("b")
        assert first is second  # one shared object: no per-call allocation
        with first as live:
            live.set(anything="goes")

    def test_nested_spans_share_a_trace_and_link_parents(self, tmp_path):
        out = tmp_path / "spans.jsonl"
        tracing.configure(str(out))
        with tracing.span("outer", kind="test") as outer:
            with tracing.span("inner"):
                pass
        events = {event["name"]: event for event in _events(out)}
        assert set(events) == {"outer", "inner"}
        inner, root = events["inner"]["args"], events["outer"]["args"]
        assert inner["trace_id"] == root["trace_id"]
        assert inner["parent_id"] == root["span_id"]
        assert "parent_id" not in root
        assert root["kind"] == "test"
        assert outer.context.trace_id == root["trace_id"]

    def test_events_are_chrome_complete_events(self, tmp_path):
        out = tmp_path / "spans.jsonl"
        tracing.configure(str(out))
        with tracing.span("planner.demo"):
            pass
        (event,) = _events(out)
        assert event["ph"] == "X"
        assert event["cat"] == "planner"
        assert event["pid"] == os.getpid()
        assert event["dur"] >= 0 and event["ts"] > 0

    def test_exception_is_recorded_and_reraised(self, tmp_path):
        out = tmp_path / "spans.jsonl"
        tracing.configure(str(out))
        with pytest.raises(ValueError):
            with tracing.span("boom"):
                raise ValueError("no")
        (event,) = _events(out)
        assert event["args"]["error"] == "ValueError"

    def test_emit_span_backdates_and_parents(self, tmp_path):
        out = tmp_path / "spans.jsonl"
        tracing.configure(str(out))
        with tracing.span("outer"):
            tracing.emit_span("stage", 0.25, stage="ship")
        events = {event["name"]: event for event in _events(out)}
        stage, outer = events["stage"], events["outer"]
        assert stage["args"]["parent_id"] == outer["args"]["span_id"]
        assert stage["dur"] == pytest.approx(250_000, rel=0.01)
        assert stage["ts"] < outer["ts"] + outer["dur"]

    def test_configure_from_env(self, tmp_path):
        out = tmp_path / "spans.jsonl"
        os.environ[tracing.TRACE_ENV] = str(out)
        tracing.configure_from_env()
        assert tracing.enabled()
        assert tracing.configured_path() == str(out)
        tracing.configure(None)
        assert tracing.configured_path() is None

    def test_attach_installs_and_restores_context(self):
        ctx = TraceContext("t1", "s1")
        assert tracing.current_context() is None
        with tracing.attach(ctx):
            assert tracing.current_context() == ctx
        assert tracing.current_context() is None


# ----------------------------------------------------------------------
# Metrics registry.
# ----------------------------------------------------------------------
class TestMetricsRegistry:
    def test_counter_inc_and_set_total(self):
        registry = MetricsRegistry()
        counter = registry.counter("events_total", "things that happened")
        counter.inc()
        counter.inc(2)
        assert counter.value == 3
        counter.set_total(7)
        assert counter.value == 7
        with pytest.raises(ValueError):
            counter.set_total(3)  # counters never go down
        with pytest.raises(ValueError):
            counter.inc(-1)

    def test_labeled_family_children(self):
        registry = MetricsRegistry()
        family = registry.counter("hits_total", "hits", labels=("kind",))
        family.labels(kind="a").inc()
        family.labels(kind="a").inc()
        family.labels(kind="b").inc(5)
        values = {child.label_values[0]: child.value
                  for child in family.children()}
        assert values == {"a": 2, "b": 5}

    def test_gauge_set_inc_dec(self):
        registry = MetricsRegistry()
        gauge = registry.gauge("depth", "queue depth")
        gauge.set(4)
        gauge.inc()
        gauge.dec(2)
        assert gauge.value == 3

    def test_histogram_percentiles_and_buckets(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("latency_seconds", "latency",
                                       buckets=(0.1, 1.0))
        assert histogram.percentiles((50,)) == {}
        for value in (0.05, 0.5, 2.0):
            histogram.observe(value)
        assert histogram.count == 3
        assert histogram.sum == pytest.approx(2.55)
        stats = histogram.percentiles((50, 100))
        assert stats["p50"] == pytest.approx(0.5)
        assert stats["p100"] == pytest.approx(2.0)

    def test_get_or_create_and_kind_conflicts(self):
        registry = MetricsRegistry()
        counter = registry.counter("n_total", "n")
        assert registry.counter("n_total", "n") is counter
        with pytest.raises(ValueError):
            registry.gauge("n_total", "same name, different kind")
        with pytest.raises(ValueError):
            registry.counter("n_total", "same name, different labels",
                             labels=("x",))

    def test_percentile_nearest_rank(self):
        values = [10.0, 20.0, 30.0, 40.0]
        assert percentile(values, 50) == 20.0
        assert percentile(values, 99) == 40.0

    def test_prometheus_rendering(self):
        registry = MetricsRegistry()
        registry.counter("requests_total", "served requests",
                         labels=("endpoint",)).labels(
                             endpoint="/v1/eval").inc(3)
        registry.gauge("depth", "queue depth").set(2)
        histogram = registry.histogram("wait_seconds", "queue wait",
                                       buckets=(0.1, 1.0))
        histogram.observe(0.05)
        histogram.observe(0.5)
        text = registry.render_prometheus()
        assert "# HELP repro_requests_total served requests" in text
        assert "# TYPE repro_requests_total counter" in text
        assert 'repro_requests_total{endpoint="/v1/eval"} 3' in text
        assert "repro_depth 2" in text
        assert 'repro_wait_seconds_bucket{le="0.1"} 1' in text
        assert 'repro_wait_seconds_bucket{le="+Inf"} 2' in text
        assert "repro_wait_seconds_count 2" in text

    def test_prometheus_escapes_label_values(self):
        registry = MetricsRegistry()
        registry.counter("odd_total", "odd", labels=("k",)).labels(
            k='a"b\\c\nd').inc()
        text = registry.render_prometheus()
        assert '{k="a\\"b\\\\c\\nd"}' in text

    def test_module_level_concatenation(self):
        first, second = MetricsRegistry(), MetricsRegistry()
        first.counter("a_total", "a").inc()
        second.counter("b_total", "b").inc()
        text = render_prometheus(first, second)
        assert "repro_a_total 1" in text and "repro_b_total 1" in text


# ----------------------------------------------------------------------
# Structured logging.
# ----------------------------------------------------------------------
class TestLogger:
    @pytest.fixture(autouse=True)
    def _restore_log_env(self):
        yield
        os.environ.pop("REPRO_LOG", None)
        os.environ.pop("REPRO_LOG_LEVEL", None)

    def test_json_lines_carry_fields_and_trace_id(self, tmp_path, capsys):
        os.environ["REPRO_LOG"] = "json"
        logger = Logger("repro.test")
        tracing.configure(str(tmp_path / "spans.jsonl"))
        with tracing.span("op") as span:
            logger.info("did a thing", count=3)
            trace_id = span.context.trace_id
        record = json.loads(capsys.readouterr().err.strip())
        assert record["event"] == "did a thing"
        assert record["count"] == 3
        assert record["name"] == "repro.test"
        assert record["level"] == "info"
        assert record["trace_id"] == trace_id

    def test_text_format_is_key_value(self, capsys):
        logger = Logger("repro.test")
        logger.warning("odd state", retries=2)
        line = capsys.readouterr().err.strip()
        assert line.startswith("repro.test: odd state")
        assert "retries=2" in line

    def test_level_filtering(self, capsys):
        os.environ["REPRO_LOG_LEVEL"] = "warning"
        logger = Logger("repro.test")
        logger.info("too quiet")
        logger.error("loud")
        err = capsys.readouterr().err
        assert "too quiet" not in err
        assert "loud" in err


# ----------------------------------------------------------------------
# Report and Chrome export.
# ----------------------------------------------------------------------
class TestReport:
    def _write(self, path, events):
        with open(path, "w", encoding="utf-8") as fh:
            for event in events:
                fh.write(json.dumps(event) + "\n")

    def _event(self, name, span_id, parent_id=None, dur=1000.0, pid=1):
        args = {"trace_id": "t", "span_id": span_id}
        if parent_id:
            args["parent_id"] = parent_id
        return {"ph": "X", "name": name, "cat": name.split(".")[0],
                "ts": 0.0, "dur": dur, "pid": pid, "tid": 1, "args": args}

    def test_load_events_skips_truncated_lines(self, tmp_path):
        path = tmp_path / "spans.jsonl"
        good = self._event("a", "s1")
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(json.dumps(good) + "\n")
            fh.write('{"ph": "X", "name": "tru\n')  # crash mid-write
            fh.write("\n")
        assert load_events(str(path)) == [good]

    def test_self_time_subtracts_direct_children(self, tmp_path):
        events = [
            self._event("root", "s1", dur=1000.0),
            self._event("child", "s2", parent_id="s1", dur=600.0, pid=2),
        ]
        stats = {entry.name: entry for entry in summarize(events)}
        assert stats["root"].total_us == 1000.0
        assert stats["root"].self_us == 400.0
        assert stats["child"].self_us == 600.0
        assert stats["child"].pids == {2}

    def test_render_report_header_and_rows(self, tmp_path):
        path = tmp_path / "spans.jsonl"
        self._write(path, [self._event("planner.group", "s1")])
        report = render_report(load_events(str(path)))
        assert "1 spans, 1 trace(s), 1 process(es)" in report
        assert "planner.group" in report

    def test_to_chrome_trace_wraps_events(self):
        events = [self._event("a", "s1")]
        document = to_chrome_trace(events)
        assert document["traceEvents"] == events
        assert document["displayTimeUnit"] == "ms"


# ----------------------------------------------------------------------
# Cross-process propagation, including through a pool crash.
# ----------------------------------------------------------------------
def _profile_one(session, name):
    profile = session.miss_profile(name, DEFAULT_MACHINE)
    return (name, profile.instructions)


def _crash_once_then_profile(session, item):
    """SIGKILL this worker unless the marker file says we already did."""
    marker, name = item
    if marker and not os.path.exists(marker):
        with open(marker, "w") as fh:
            fh.write(str(os.getpid()))
        os.kill(os.getpid(), signal.SIGKILL)
    return _profile_one(session, name)


class TestWorkerPropagation:
    def test_worker_spans_join_the_parent_trace(self, tmp_path):
        out = tmp_path / "spans.jsonl"
        tracing.configure(str(out))  # before the pool: workers inherit it
        with pooled_session(None, 2) as session:
            with tracing.span("test.batch") as root:
                session.map(_profile_one, ["sha", "qsort", "dijkstra"])
                trace_id = root.context.trace_id
        events = _events(out)
        worker_pids = {event["pid"] for event in events
                       if event["pid"] != os.getpid()}
        assert worker_pids, "no spans from worker processes"
        assert {event["args"]["trace_id"] for event in events} == {trace_id}

    def test_context_survives_pool_crash_reset_and_retry(self, tmp_path):
        out = tmp_path / "spans.jsonl"
        marker = str(tmp_path / "crashed")
        tracing.configure(str(out))
        with pooled_session(None, 2) as session:
            items = [(marker if index == 0 else "", name)
                     for index, name in enumerate(("sha", "qsort",
                                                   "dijkstra"))]
            with tracing.span("test.batch") as root:
                results = session.map(_crash_once_then_profile, items)
                trace_id = root.context.trace_id
        assert os.path.exists(marker)  # the crash really happened
        assert [name for name, _ in results] == ["sha", "qsort", "dijkstra"]
        events = _events(out)
        retry_pids = {event["pid"] for event in events
                      if event["pid"] != os.getpid()}
        assert retry_pids, "no spans from the respawned pool"
        # Every span — including those from the fresh post-crash pool —
        # still parents into the same trace.
        assert {event["args"]["trace_id"] for event in events} == {trace_id}


# ----------------------------------------------------------------------
# Tracing must not change results.
# ----------------------------------------------------------------------
def _requests():
    return [
        EvalRequest(workload=WorkloadSpec(name), machine=MachineSpec(preset))
        for name in ("sha", "dijkstra")
        for preset in ("paper_default", "big_l2_1mb")
    ]


def _serialized(results) -> str:
    return json.dumps([result.to_dict() for result in results])


class TestTracingInvariance:
    @pytest.fixture(autouse=True)
    def _restore_backends(self):
        previous_accel = accel.active_backend()
        previous_plane = dataplane.active_mode()
        yield
        accel.set_backend(previous_accel)
        dataplane.set_mode(previous_plane)

    def _on_off(self, tmp_path, run):
        tracing.configure(None)
        off = run()
        tracing.configure(str(tmp_path / "spans.jsonl"))
        on = run()
        tracing.configure(None)
        return off, on

    @pytest.mark.parametrize("backend", ["python", "numpy"])
    def test_serial_output_identical_on_both_backends(self, tmp_path,
                                                      backend):
        if backend == "numpy":
            pytest.importorskip("numpy")
        accel.set_backend(backend)
        requests = _requests()
        off, on = self._on_off(
            tmp_path, lambda: _serialized(evaluate_many(requests))
        )
        assert off == on

    @pytest.mark.parametrize("plane", ["shm", "payload"])
    def test_sharded_output_identical_on_both_planes(self, tmp_path, plane):
        dataplane.set_mode(plane)
        requests = _requests()

        def run():
            with pooled_session(None, 2) as session:
                return _serialized(evaluate_many(requests, session=session))

        off, on = self._on_off(tmp_path, run)
        assert off == on
