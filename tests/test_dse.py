"""Tests for the design space definition and the exploration driver."""

import pytest

from repro.dse import (
    DesignSpace,
    DesignSpaceExplorer,
    default_design_space,
    reduced_design_space,
)
from repro.dse.explorer import EDPResult
from repro.machine import MachineConfig
from repro.workloads import get_workload


class TestDesignSpace:
    def test_full_space_has_192_points(self):
        space = default_design_space()
        assert len(space) == 192
        configurations = space.configurations()
        assert len(configurations) == 192
        assert len({machine.name for machine in configurations}) == 192

    def test_reduced_space_is_subset_sized(self):
        space = reduced_design_space()
        assert 0 < len(space) < 192
        assert len(space.configurations()) == len(space)

    def test_configurations_cover_table2_ranges(self):
        space = default_design_space()
        configurations = space.configurations()
        assert {machine.width for machine in configurations} == {1, 2, 3, 4}
        assert {machine.pipeline_stages for machine in configurations} == {5, 7, 9}
        assert {machine.frequency_mhz for machine in configurations} == {600, 800, 1000}
        assert {machine.l2_size for machine in configurations} == {
            128 * 1024, 256 * 1024, 512 * 1024, 1024 * 1024
        }
        assert {machine.l2_associativity for machine in configurations} == {8, 16}
        assert {machine.branch_predictor for machine in configurations} == {
            "global_1kb", "hybrid_3.5kb"
        }

    def test_depth_frequency_coupled(self):
        for machine in default_design_space():
            if machine.pipeline_stages == 5:
                assert machine.frequency_mhz == 600
            elif machine.pipeline_stages == 9:
                assert machine.frequency_mhz == 1000

    def test_custom_base_config_propagates(self):
        space = DesignSpace(base=MachineConfig(l1d_size=16 * 1024))
        assert all(machine.l1d_size == 16 * 1024 for machine in space.configurations())

    def test_iteration(self):
        assert len(list(iter(reduced_design_space()))) == len(reduced_design_space())


@pytest.fixture(scope="module")
def tiny_explorer():
    """An explorer over a 4-point space, small enough to simulate in tests."""
    configurations = [
        MachineConfig(width=width, pipeline_stages=stages, frequency_mhz=freq,
                      name=f"w{width}_d{stages}")
        for width, stages, freq in [(1, 5, 600), (2, 5, 600), (4, 9, 1000), (2, 9, 1000)]
    ]
    return DesignSpaceExplorer(configurations)


class TestExplorer:
    def test_empty_space_rejected(self):
        with pytest.raises(ValueError):
            DesignSpaceExplorer([])

    def test_evaluate_model_only(self, tiny_explorer):
        results = tiny_explorer.evaluate(get_workload("sha"))
        assert len(results) == 4
        assert all(point.simulated_cycles is None for point in results)
        assert all(point.model_cpi > 0 for point in results)
        # Wider configurations should not have a higher predicted CPI... but a
        # deeper pipeline can; just check the scalar machine is the slowest.
        scalar = next(point for point in results if point.machine.width == 1)
        assert all(scalar.model_cpi >= point.model_cpi for point in results)

    def test_evaluate_with_simulation_and_power(self, tiny_explorer):
        results = tiny_explorer.evaluate(
            get_workload("sha"), simulate=True, with_power=True
        )
        for point in results:
            assert point.simulated_cycles is not None
            assert point.simulated_cpi > 0
            assert point.model_energy_joules > 0
            assert point.simulated_energy_joules > 0
            assert point.model_edp > 0
            assert point.simulated_edp > 0

    def test_validation_summary(self, tiny_explorer):
        summary = tiny_explorer.validate([get_workload("sha")])
        assert summary.count == 4
        assert 0 <= summary.average_absolute_error < 0.2
        assert summary.maximum_absolute_error < 0.3

    def test_best_by_model_without_power_is_a_clear_error(self, tiny_explorer):
        points = tiny_explorer.evaluate(get_workload("sha"))
        exploration = EDPResult(workload="sha", points=points)
        with pytest.raises(ValueError, match="with_power"):
            exploration.best_by_model()

    def test_edp_exploration(self, tiny_explorer):
        exploration = tiny_explorer.explore_edp(get_workload("gsm_c"))
        best_model = exploration.best_by_model()
        best_simulated = exploration.best_by_simulation()
        assert best_model.machine.name in {p.machine.name for p in exploration.points}
        assert best_simulated.simulated_edp <= min(
            point.simulated_edp for point in exploration.points
        ) * 1.0001
        assert exploration.model_choice_edp_gap() >= 0.0

    def test_profiles_are_cached_in_the_session(self, tiny_explorer):
        workload = get_workload("sha")
        tiny_explorer.evaluate(workload)
        built = tiny_explorer.session.stats.miss_profiles_built
        assert built >= len(tiny_explorer.configurations)
        tiny_explorer.evaluate(workload)
        # The second sweep is answered entirely from the session memo.
        assert tiny_explorer.session.stats.miss_profiles_built == built

    def test_same_name_configs_do_not_collide(self):
        # Two distinct configurations sharing a name (here: empty) must get
        # distinct miss profiles — the session memo is keyed on the frozen
        # config itself.
        small = MachineConfig(l2_size=128 * 1024)
        big = MachineConfig(l2_size=1024 * 1024)
        assert small.name == big.name == ""
        explorer = DesignSpaceExplorer([small, big])
        workload = get_workload("sha")
        explorer.evaluate(workload)
        small_profile = explorer.session.miss_profile(workload, small)
        big_profile = explorer.session.miss_profile(workload, big)
        assert explorer.session.stats.miss_profiles_built == 2
        assert small_profile.machine.l2_size != big_profile.machine.l2_size
