"""End-to-end design-space search: strategies, envelopes, validation.

The two anchor results: the ``exhaustive`` strategy reproduces the
legacy :class:`~repro.dse.explorer.EDPResult` optimum bit-for-bit
through the new machinery, and the ``surrogate`` strategy finds the same
Table-2 EDP optimum in at most a third of the exhaustive evaluations —
deterministically, byte-identical across job counts.
"""

from __future__ import annotations

import pytest

from repro import api
from repro.dse import DesignSpaceExplorer, default_design_space, reduced_design_space
from repro.machine import area_proxy
from repro.runtime.session import Session
from repro.search import (
    OptimizeRequest,
    OptimizeResult,
    optimize,
    strategy_names,
    validate_optimize_request,
)
from repro.workloads import get_workload


@pytest.fixture(scope="module")
def session():
    """One shared in-memory session so traces/profiles memoize across tests."""
    return Session()


@pytest.fixture(scope="module")
def sha_result(session):
    return api.evaluate({"workload": "sha", "with_power": True},
                        session=session)


@pytest.fixture(scope="module")
def sha_result_no_power(session):
    return api.evaluate({"workload": "sha"}, session=session)


# ----------------------------------------------------------------------
# The metric accessor (the vocabulary objectives/constraints read).
# ----------------------------------------------------------------------
class TestMetricAccessor:
    def test_scalar_paths(self, sha_result):
        assert sha_result.metric("cpi") == sha_result.cpi
        assert sha_result.metric("ipc") == pytest.approx(1 / sha_result.cpi)
        assert sha_result.metric("cycles") == float(sha_result.cycles)
        assert sha_result.metric("seconds") == sha_result.seconds

    def test_power_paths(self, sha_result):
        assert sha_result.metric("energy") == sha_result.energy_joules
        assert sha_result.metric("edp") == pytest.approx(
            sha_result.energy_joules * sha_result.seconds)

    def test_machine_paths(self, sha_result):
        machine = sha_result.request.machine.resolve()
        assert sha_result.metric("machine.l2_size") == float(machine.l2_size)
        assert sha_result.metric("machine.area_proxy") == \
            pytest.approx(area_proxy(machine))
        assert sha_result.metric("frequency") == float(machine.frequency_mhz)

    def test_cpi_stack_paths(self, sha_result):
        component = next(iter(sha_result.cpi_stack))
        assert sha_result.metric(f"cpi_stack.{component}") == \
            float(sha_result.cpi_stack[component])

    def test_unknown_path_lists_vocabulary(self, sha_result):
        with pytest.raises(KeyError, match="valid paths.*cpi"):
            sha_result.metric("latency")

    def test_power_path_without_power_advises_with_power(
            self, sha_result_no_power):
        with pytest.raises(KeyError, match="with_power=True"):
            sha_result_no_power.metric("edp")
        assert "edp" not in sha_result_no_power.metric_paths()

    def test_unknown_stack_component_lists_components(self, sha_result):
        with pytest.raises(KeyError, match="this result has"):
            sha_result.metric("cpi_stack.nonexistent")

    def test_metric_paths_all_resolve(self, sha_result):
        for path in sha_result.metric_paths():
            value = sha_result.metric(path)
            assert isinstance(value, float)


# ----------------------------------------------------------------------
# Exhaustive golden: the legacy EDP optimum through the new machinery.
# ----------------------------------------------------------------------
class TestExhaustiveGolden:
    def test_matches_legacy_explorer_optimum(self, session):
        design = reduced_design_space()
        legacy = DesignSpaceExplorer(
            design.configurations(), session=session
        ).explore_edp(get_workload("sha"), simulate=False).best_by_model()

        result = optimize(OptimizeRequest(
            space=design.to_search_space(), workload=api.WorkloadSpec("sha"),
            objectives=(api_objective("edp"),), strategy="exhaustive",
            budget=len(design),
        ), session=session)

        assert result.evaluations == result.cardinality == len(design)
        assert result.best is not None
        assert result.best["machine"] == legacy.machine.name
        assert result.best["objectives"]["edp"] == \
            pytest.approx(legacy.model_edp)

    def test_front_is_subset_of_evaluations_and_contains_best(self, session):
        design = reduced_design_space()
        result = optimize(OptimizeRequest(
            space=design.to_search_space(), workload=api.WorkloadSpec("sha"),
            objectives=(api_objective("edp"), api_objective("max:ipc")),
            strategy="exhaustive", budget=len(design),
        ), session=session)
        indices = [entry["index"] for entry in result.front]
        assert indices == sorted(indices)
        assert result.best["index"] in indices
        assert 1 <= len(indices) <= result.evaluations


def api_objective(text):
    from repro.search import Objective

    return Objective.parse(text)


# ----------------------------------------------------------------------
# Determinism.
# ----------------------------------------------------------------------
class TestDeterminism:
    REQUEST = None  # built lazily against the reduced space

    @staticmethod
    def _request(strategy: str) -> OptimizeRequest:
        return OptimizeRequest(
            space=reduced_design_space().to_search_space(),
            workload=api.WorkloadSpec("sha"),
            objectives=(api_objective("edp"),),
            strategy=strategy, budget=12, batch=4, seed=7,
        )

    @pytest.mark.parametrize("strategy", ["random", "surrogate"])
    def test_same_seed_same_bytes(self, strategy, session):
        request = self._request(strategy)
        first = optimize(request, session=session).to_json()
        second = optimize(request, session=session).to_json()
        assert first == second

    def test_jobs_do_not_change_bytes(self, tmp_path):
        request = self._request("surrogate")
        serial = optimize(request, jobs=1,
                          cache_dir=tmp_path / "serial").to_json()
        parallel = optimize(request, jobs=2,
                            cache_dir=tmp_path / "parallel").to_json()
        assert serial == parallel

    def test_budget_is_respected(self, session):
        for strategy in ("random", "surrogate"):
            result = optimize(self._request(strategy), session=session)
            assert result.evaluations <= 12
            assert result.trajectory  # convergence rounds were recorded
            assert result.trajectory[-1]["evaluations"] == result.evaluations


# ----------------------------------------------------------------------
# Surrogate convergence: the ISSUE's acceptance bar.
# ----------------------------------------------------------------------
class TestSurrogateConvergence:
    def test_finds_table2_edp_best_in_a_third_of_the_evaluations(
            self, session):
        space = default_design_space().to_search_space()
        common = dict(space=space, workload=api.WorkloadSpec("dijkstra"),
                      objectives=(api_objective("edp"),))

        exhaustive = optimize(
            OptimizeRequest(strategy="exhaustive", budget=192, **common),
            session=session)
        assert exhaustive.evaluations == 192

        budget = 192 // 3
        surrogate = optimize(
            OptimizeRequest(strategy="surrogate", budget=budget, batch=8,
                            seed=2012, **common),
            session=session)
        assert surrogate.evaluations <= budget
        assert surrogate.best["machine"] == exhaustive.best["machine"]
        assert surrogate.best["objectives"]["edp"] == \
            pytest.approx(exhaustive.best["objectives"]["edp"])
        # The convergence figure the bench gates on.
        assert surrogate.best_found_at_evaluation is not None
        assert surrogate.best_found_at_evaluation <= budget

    def test_machine_constraints_prune_without_spending_budget(self, session):
        result = optimize(OptimizeRequest(
            space=default_design_space().to_search_space(),
            workload=api.WorkloadSpec("sha"),
            objectives=(api_objective("edp"),),
            constraints=tuple(api_constraint(text) for text in
                              ("l2_size<=256KB", "width>=2")),
            strategy="exhaustive", budget=192,
        ), session=session)
        assert result.infeasible_skipped > 0
        assert result.evaluations + result.infeasible_skipped == 192
        for entry in result.front:
            spec = entry["result"]["request"]["machine"]
            assert spec["width"] >= 2


def api_constraint(text):
    from repro.search import Constraint

    return Constraint.parse(text)


# ----------------------------------------------------------------------
# Upfront validation (named-field errors).
# ----------------------------------------------------------------------
class TestValidation:
    @staticmethod
    def _request(**overrides) -> OptimizeRequest:
        payload = {
            "space": {"axes": [{"axis": "l2_size",
                                "values": ["256KB", "1MB"]}]},
            "workload": "sha",
            "objectives": ["edp"],
        }
        payload.update(overrides)
        return OptimizeRequest.from_dict(payload)

    def test_well_formed_request_has_no_errors(self):
        assert validate_optimize_request(self._request()) == []

    def test_infeasible_constraint_names_field_and_candidates(self):
        errors = validate_optimize_request(
            self._request(constraints=["l2_size<=1KB"]))
        assert len(errors) == 1
        assert errors[0].startswith("constraints[0]:")
        assert "'l2_size'" in errors[0] and "infeasible" in errors[0]

    def test_feasible_constraint_on_base_value_passes(self):
        # width is not on an axis; the base machine's width must be probed.
        errors = validate_optimize_request(
            self._request(constraints=["width>=1"]))
        assert errors == []

    def test_bad_budget_batch_and_strategy(self):
        errors = validate_optimize_request(
            self._request(budget=0, batch=0, strategy="genetic"))
        fields = sorted(error.split(":")[0] for error in errors)
        assert fields == ["batch", "budget", "strategy"]

    def test_exhaustive_needs_full_budget(self):
        errors = validate_optimize_request(
            self._request(strategy="exhaustive", budget=1))
        assert any("needs budget >= 2" in error for error in errors)

    def test_power_objective_with_power_pinned_off(self):
        errors = validate_optimize_request(
            self._request(with_power=False))
        assert any(error.startswith("objectives:") for error in errors)

    def test_non_machine_axis_field_rejected(self):
        errors = validate_optimize_request(self._request(
            space={"axes": [{"axis": "turbo_mode", "values": [1]}]}))
        assert any(error.startswith("space: axis field 'turbo_mode'")
                   for error in errors)

    def test_unknown_workload_surfaces_as_request_error(self):
        errors = validate_optimize_request(self._request(workload="doom"))
        assert any(error.startswith("request:") and "doom" in error
                   for error in errors)

    def test_optimize_raises_one_joined_error(self):
        with pytest.raises(ValueError, match="invalid optimize request"):
            optimize(self._request(constraints=["l2_size<=1KB"], budget=0))

    def test_validate_requests_dispatches_optimize_requests(self):
        good_eval = api.EvalRequest.parse({"workload": "sha"})
        bad_search = self._request(strategy="genetic")
        with pytest.raises(ValueError, match=r"request\[1\]: strategy:"):
            api.validate_requests([good_eval, bad_search])
        # A well-formed search request passes through the same gate.
        api.validate_requests([good_eval, self._request()])


# ----------------------------------------------------------------------
# Envelopes.
# ----------------------------------------------------------------------
class TestEnvelopes:
    def test_request_round_trips_through_json(self):
        request = OptimizeRequest.from_dict({
            "space": {"axes": [{"axis": "width", "values": [1, 2]}]},
            "workload": {"name": "sha", "flags": "O2"},
            "objectives": ["edp", "max:ipc"],
            "constraints": ["area_proxy<=700"],
            "strategy": "random", "budget": 5, "batch": 2, "seed": 3,
            "tag": "round-trip",
        })
        clone = OptimizeRequest.from_json(request.to_json())
        assert clone.to_dict() == request.to_dict()
        assert clone.effective_with_power  # edp objective implies power

    def test_single_objective_string_is_coerced(self):
        request = OptimizeRequest.from_dict({
            "space": {"axes": [{"axis": "width", "values": [1]}]},
            "workload": "sha", "objectives": "cpi",
        })
        assert [str(objective) for objective in request.objectives] == ["cpi"]
        assert not request.effective_with_power

    def test_unknown_key_rejected(self):
        with pytest.raises(ValueError, match="unknown optimize-request keys"):
            OptimizeRequest.from_dict({
                "space": {"axes": []}, "workload": "sha",
                "objectives": ["cpi"], "stratgy": "random",
            })

    def test_missing_required_key_rejected(self):
        with pytest.raises(ValueError, match="needs a 'objectives' entry"):
            OptimizeRequest.from_dict({"space": {"axes": []},
                                       "workload": "sha"})

    def test_result_round_trips_through_json(self, session):
        result = optimize(OptimizeRequest(
            space=reduced_design_space().to_search_space(),
            workload=api.WorkloadSpec("sha"),
            objectives=(api_objective("edp"),),
            strategy="random", budget=4, batch=2, seed=1,
        ), session=session)
        clone = OptimizeResult.from_json(result.to_json())
        assert clone.to_dict() == result.to_dict()
        assert clone.to_json() == result.to_json()

    def test_strategy_registry_names(self):
        assert set(strategy_names()) >= {"exhaustive", "random", "surrogate"}
