"""The shared-memory data plane: segments, lifecycle, parity, crash safety.

The acceptance-criteria checks live in :class:`TestShardedParity`
(``evaluate_many`` sharded over the persistent pool is byte-identical to
serial on both kernel backends, on both the ``shm`` and ``payload``
planes) and :class:`TestCrashSafety` (a worker SIGKILLed mid-batch costs
a retry, never results, and no ``/dev/shm`` segment is ever orphaned).
"""

from __future__ import annotations

import json
import os
import signal

import pytest

from repro import accel
from repro.api import evaluate_many
from repro.api.spec import EvalRequest, MachineSpec, WorkloadSpec
from repro.machine import DEFAULT_MACHINE
from repro.runtime import dataplane
from repro.runtime.dataplane import (
    SegmentRegistry,
    StageTimings,
    attach_trace,
    attached_count,
    detach_all,
    live_segments,
)
from repro.runtime.session import Session, pooled_session
from repro.workloads import get_workload

pytestmark = pytest.mark.skipif(
    not dataplane.shared_memory_available(),
    reason="POSIX shared memory unavailable on this platform",
)


@pytest.fixture(autouse=True)
def _restore_dataplane():
    """Pin and restore the module-level mode; leave no attachments behind."""
    previous = dataplane._MODE
    yield
    dataplane._MODE = previous
    detach_all()


def _requests(workloads=("sha", "dijkstra"),
              presets=("paper_default", "big_l2_1mb")):
    return [
        EvalRequest(workload=WorkloadSpec(name), machine=MachineSpec(preset))
        for name in workloads
        for preset in presets
    ]


def _serialized(results) -> str:
    return json.dumps([result.to_dict() for result in results])


# ----------------------------------------------------------------------
# Mode selection.
# ----------------------------------------------------------------------
class TestModeSelection:
    def test_auto_resolves_to_shm_when_available(self):
        assert dataplane.set_mode("auto") == "shm"
        assert dataplane.active_mode() == "shm"

    def test_payload_is_always_accepted(self):
        assert dataplane.set_mode("payload") == "payload"

    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError, match="unknown dataplane"):
            dataplane.set_mode("rdma")

    def test_environment_variable_selects_the_plane(self, monkeypatch):
        monkeypatch.setenv(dataplane.DATAPLANE_ENV, "payload")
        dataplane._MODE = None
        assert dataplane.active_mode() == "payload"

    def test_shm_request_fails_loudly_when_unavailable(self, monkeypatch):
        monkeypatch.setattr(dataplane, "_AVAILABLE", False)
        with pytest.raises(ValueError, match="unavailable"):
            dataplane.set_mode("shm")

    def test_auto_degrades_to_payload_when_unavailable(self, monkeypatch):
        monkeypatch.setattr(dataplane, "_AVAILABLE", False)
        assert dataplane.set_mode("auto") == "payload"


# ----------------------------------------------------------------------
# Segment round trip and lifecycle.
# ----------------------------------------------------------------------
class TestSegmentLifecycle:
    def test_published_trace_attaches_byte_identical(self):
        trace = get_workload("sha").trace()
        registry = SegmentRegistry()
        try:
            handle = registry.publish(trace)
            assert handle.name.startswith(dataplane.SEGMENT_PREFIX)
            assert handle.nbytes > 0
            attached = attach_trace(handle)
            assert attached.name == trace.name
            assert attached.statics == trace.statics
            for field in dataplane.COLUMN_FIELDS:
                ours = getattr(attached, field)
                theirs = getattr(trace, field)
                assert len(ours) == len(theirs)
                assert ours.tobytes() == theirs.tobytes()
            # The attachment is a mapping of the segment, not a copy.
            assert isinstance(attached.pcs, memoryview)
        finally:
            detach_all()
            registry.close()

    def test_attachments_memoized_per_segment(self):
        registry = SegmentRegistry()
        try:
            handle = registry.publish(get_workload("sha").trace())
            first = attach_trace(handle)
            assert attach_trace(handle) is first
            assert attached_count() == 1
        finally:
            detach_all()
            registry.close()

    def test_refcount_reaches_zero_unlinks_the_segment(self):
        registry = SegmentRegistry()
        handle = registry.publish(get_workload("sha").trace())
        assert registry.refcount(handle.name) == 1
        registry.retain(handle.name)
        assert registry.refcount(handle.name) == 2
        registry.release(handle.name)
        assert handle.name in live_segments()
        registry.release(handle.name)
        assert registry.refcount(handle.name) == 0
        assert handle.name not in live_segments()

    def test_close_unlinks_everything(self):
        registry = SegmentRegistry()
        names = [registry.publish(get_workload(name).trace()).name
                 for name in ("sha", "dijkstra")]
        assert all(name in live_segments() for name in names)
        registry.close()
        assert all(name not in live_segments() for name in names)
        registry.close()  # idempotent

    def test_schema_mismatch_rejected_on_attach(self):
        from dataclasses import replace

        registry = SegmentRegistry()
        try:
            handle = registry.publish(get_workload("sha").trace())
            stale = replace(handle, schema_version=-1)
            with pytest.raises(ValueError, match="schema"):
                attach_trace(stale)
        finally:
            registry.close()

    def test_session_publish_is_memoized_and_closed(self):
        dataplane.set_mode("shm")
        session = Session()
        assert session.publish_trace("sha") is None  # not held yet
        session.workload("sha")
        handle = session.publish_trace("sha")
        assert handle is not None
        assert session.publish_trace("sha") is handle
        assert handle.name in live_segments()
        session.close()
        assert handle.name not in live_segments()

    def test_ship_trace_follows_the_active_plane(self):
        session = Session()
        session.workload("sha")
        dataplane.set_mode("payload")
        assert isinstance(session.ship_trace("sha"), dict)
        dataplane.set_mode("shm")
        shipped = session.ship_trace("sha")
        assert shipped is session.publish_trace("sha")
        session.close()

    def test_publish_failure_degrades_to_payload(self, monkeypatch):
        dataplane.set_mode("shm")
        session = Session()
        session.workload("sha")

        def exploding_publish(self, trace):
            raise OSError("no space left on /dev/shm")

        monkeypatch.setattr(SegmentRegistry, "publish", exploding_publish)
        shipped = session.ship_trace("sha")
        assert isinstance(shipped, dict)  # payload fallback
        assert session.dataplane_mode() == "payload"
        session.close()


# ----------------------------------------------------------------------
# Parity: sharded == serial, on both planes and both kernel backends.
# ----------------------------------------------------------------------
class TestShardedParity:
    @pytest.mark.parametrize("plane", ["shm", "payload"])
    @pytest.mark.parametrize("backend", ["python", "numpy"])
    def test_sharded_evaluate_many_is_byte_identical_to_serial(
            self, plane, backend):
        if backend not in [name for name, usable
                           in accel.available_backends().items() if usable]:
            pytest.skip(f"kernel backend {backend} unavailable")
        requests = _requests()
        previous = accel.active_backend()
        accel.set_backend(backend)
        try:
            serial = _serialized(evaluate_many(requests, session=Session()))
            dataplane.set_mode(plane)
            with pooled_session(None, 4) as session:
                for name in ("sha", "dijkstra"):
                    session.workload(name)  # parent-held: exercises ship
                sharded = _serialized(evaluate_many(requests,
                                                    session=session))
                assert session.dataplane_mode() == plane
            assert sharded == serial
        finally:
            accel.set_backend(previous)
        assert live_segments() == []

    def test_stage_breakdown_recorded_for_sharded_batches(self):
        dataplane.set_mode("shm")
        with pooled_session(None, 2) as session:
            for name in ("sha", "dijkstra"):
                session.workload(name)
            evaluate_many(_requests(), session=session)
            stages = session.stages.as_dict()
        assert set(StageTimings.ORDER) <= set(stages)
        assert list(stages)[:5] == list(StageTimings.ORDER)
        assert all(seconds >= 0.0 for seconds in stages.values())

    def test_warm_pool_persists_across_batches(self):
        from repro.runtime.scheduler import WorkerPool

        dataplane.set_mode("shm")
        with pooled_session(None, 2) as session:
            session.workload("sha")
            requests = _requests(workloads=("sha",))
            first = _serialized(evaluate_many(requests, session=session))
            pool = session.pool()
            created = WorkerPool.created_total
            second = _serialized(evaluate_many(requests, session=session))
            assert first == second
            assert session.pool() is pool  # same workers, still warm
            assert WorkerPool.created_total == created


# ----------------------------------------------------------------------
# Crash safety.
# ----------------------------------------------------------------------
def _crash_once(session, item):
    """SIGKILL this worker unless the marker file says we already did."""
    marker, name = item
    if marker and not os.path.exists(marker):
        with open(marker, "w") as fh:
            fh.write(str(os.getpid()))
        os.kill(os.getpid(), signal.SIGKILL)
    profile = session.miss_profile(name, DEFAULT_MACHINE)
    return (name, profile.instructions, profile.mispredictions)


class TestCrashSafety:
    def test_sigkilled_worker_mid_batch_retries_and_leaks_nothing(
            self, tmp_path):
        dataplane.set_mode("shm")
        marker = str(tmp_path / "crashed")
        with pooled_session(None, 2) as session:
            session.workload("sha")
            handle = session.publish_trace("sha")
            assert handle.name in live_segments()
            items = [(marker if index == 0 else "", name)
                     for index, name in enumerate(("sha", "qsort",
                                                   "dijkstra"))]
            results = session.map(_crash_once, items)
            assert os.path.exists(marker)  # the crash really happened
            expected = [_crash_once(Session(), ("", name))
                        for _, name in items]
            assert results == expected
            # The parent's segment survived its workers' death.
            assert handle.name in live_segments()
        assert live_segments() == []

    def test_sigkill_between_attach_and_first_read_leaks_no_segment(
            self, tmp_path):
        """The orphan-cleanup window: die right after mapping a segment.

        A ``dataplane.attach`` kill fault SIGKILLs the first worker that
        attaches a published trace — after the segment is mapped, before
        the first read.  The batch must still complete via retry, the
        parent's segment must survive its worker's death, and closing the
        session must drain every attachment and ``/dev/shm`` entry.
        """
        from repro.resilience import faults
        from repro.resilience.faults import FaultPlan, FaultSpec

        dataplane.set_mode("shm")
        # state_dir shares the firing window across the worker fleet:
        # exactly ONE kill, not one per respawned worker.
        plan = FaultPlan(specs=(
            FaultSpec(point="dataplane.attach", mode="kill", count=1),
        ), seed=7, state_dir=str(tmp_path / "faults"))
        faults.install(plan)
        try:
            with pooled_session(None, 2) as session:
                session.workload("sha")
                handle = session.publish_trace("sha")
                assert handle.name in live_segments()
                results = _serialized(
                    evaluate_many(_requests(workloads=("sha",)),
                                  session=session))
                # The kill really happened and was contained as a retry.
                assert plan.report()["rules"][0]["fires"] == 1
                assert session.health.pool_crashes >= 1
                # Results survived the crash, byte-identical to serial.
                assert results == _serialized(
                    evaluate_many(_requests(workloads=("sha",)),
                                  session=Session()))
                # The parent's segment survived its worker's death.
                assert handle.name in live_segments()
        finally:
            faults.clear()
        # Session closed: nothing attached, nothing published, and no
        # orphaned /dev/shm/repro-dp-* entry from the killed worker.
        assert live_segments() == []
        assert attached_count() == 0
        shm_root = "/dev/shm"
        if os.path.isdir(shm_root):
            leaked = [name for name in os.listdir(shm_root)
                      if name.startswith("repro-dp-")]
            assert leaked == []

    def test_worker_exit_does_not_unlink_parent_segments(self):
        dataplane.set_mode("shm")
        with pooled_session(None, 2) as session:
            session.workload("sha")
            handle = session.publish_trace("sha")
            evaluate_many(_requests(workloads=("sha",)), session=session)
            session.reset_pool()  # all workers exit, segments stay
            assert handle.name in live_segments()
            # A fresh pool re-attaches the same segment.
            again = _serialized(
                evaluate_many(_requests(workloads=("sha",)),
                              session=session))
            assert again == _serialized(
                evaluate_many(_requests(workloads=("sha",)),
                              session=Session()))
        assert live_segments() == []


# ----------------------------------------------------------------------
# Stage timings.
# ----------------------------------------------------------------------
class TestStageTimings:
    def test_accumulates_and_orders_canonically(self):
        timings = StageTimings()
        assert not timings
        timings.add("model", 0.25)
        timings.add("ship", 0.5)
        timings.add("ship", 0.25)
        timings.merge({"attach": 0.125})
        assert timings
        assert timings.as_dict() == {"ship": 0.75, "attach": 0.125,
                                     "model": 0.25}

    def test_merge_accepts_other_timings_and_none(self):
        first = StageTimings()
        first.add("profile", 1.0)
        second = StageTimings()
        second.merge(first)
        second.merge(None)
        second.merge({})
        assert second.as_dict() == {"profile": 1.0}

    def test_clear_resets(self):
        timings = StageTimings()
        timings.add("collect", 1.0)
        timings.clear()
        assert timings.as_dict() == {}
