"""Integration tests for the experiment drivers.

Each experiment is exercised on a reduced benchmark set so the whole suite
remains fast; the full runs are available through the benchmark harness and
the command line interface (whose smoke suite lives in ``test_cli.py``).
"""

import pytest

from repro.experiments import (
    ALL_EXPERIMENTS,
    figure3,
    figure4,
    figure5,
    figure6,
    figure7,
    figure8,
    figure9,
    speedup,
    table2,
)
from repro.machine import MachineConfig
from repro.runtime import EXPERIMENTS, get_experiment


@pytest.fixture(scope="module")
def quick_machine():
    return MachineConfig(name="default")


class TestTable2:
    def test_run_and_format(self):
        result = table2.run()
        assert result.design_points == 192
        text = table2.format_result(result)
        assert "192 design points" in text
        assert "branch predictor" in text


class TestFigure3:
    def test_subset_accuracy(self, quick_machine):
        result = figure3.run(benchmarks=["sha", "qsort", "tiff2bw"], machine=quick_machine)
        assert len(result.rows) == 3
        assert result.summary.average_absolute_error < 0.12
        text = figure3.format_result(result)
        assert "sha" in text and "average |error|" in text


class TestFigure4:
    def test_width_scaling_shapes(self, quick_machine):
        result = figure4.run(benchmarks=("sha", "dijkstra"), widths=(1, 4),
                             machine=quick_machine)
        assert len(result.points) == 4
        sha_points = {p.width: p for p in result.for_benchmark("sha")}
        dijkstra_points = {p.width: p for p in result.for_benchmark("dijkstra")}
        # sha gains a lot from width, dijkstra much less (the paper's story).
        sha_gain = sha_points[1].stack.cpi / sha_points[4].stack.cpi
        dijkstra_gain = dijkstra_points[1].stack.cpi / dijkstra_points[4].stack.cpi
        assert sha_gain > dijkstra_gain
        # The dependency component grows with width for dijkstra.
        assert (dijkstra_points[4].stack.grouped().get("dependencies", 0.0)
                > dijkstra_points[1].stack.grouped().get("dependencies", 0.0))
        assert "Figure 4" in figure4.format_result(result)


class TestFigure5:
    def test_reduced_space_error_distribution(self):
        result = figure5.run(full=False, benchmarks=("sha", "qsort"))
        assert result.summary.count == result.design_points * 2
        assert result.summary.average_absolute_error < 0.10
        assert 0.0 <= result.fraction_below_6_percent <= 1.0
        assert result.cdf[-1][1] == pytest.approx(1.0)
        assert "Figure 5" in figure5.format_result(result)


class TestFigure6:
    def test_spec_like_suite(self, quick_machine):
        result = figure6.run(benchmarks=["mcf_like", "libquantum_like"],
                             machine=quick_machine)
        assert len(result.rows) == 2
        assert result.summary.average_absolute_error < 0.15
        # Memory-bound workloads have clearly higher CPI than typical MiBench.
        assert any(row.simulated_cpi > 2.0 for row in result.rows)
        assert "Figure 6" in figure6.format_result(result)


class TestFigure7:
    def test_in_order_vs_out_of_order(self, quick_machine):
        result = figure7.run(benchmarks=("dijkstra", "tiff2bw"), machine=quick_machine)
        assert len(result.rows) == 2
        for row in result.rows:
            assert row.out_of_order.cpi < row.in_order.cpi
            in_order_groups = row.in_order.grouped()
            out_of_order_groups = row.out_of_order.grouped()
            assert in_order_groups.get("dependencies", 0.0) > 0.0
            assert out_of_order_groups.get("dependencies", 0.0) == 0.0
            assert row.out_of_order_simulated_cpi > 0
        assert "Figure 7" in figure7.format_result(result)


class TestFigure8:
    def test_compiler_variants(self, quick_machine):
        result = figure8.run(benchmarks=("sha", "tiffdither"), machine=quick_machine)
        assert len(result.rows) == 6
        for benchmark in ("sha", "tiffdither"):
            rows = {row.variant: row for row in result.for_benchmark(benchmark)}
            assert rows["O3"].normalized_cycles == pytest.approx(1.0)
            assert rows["nosched"].normalized_cycles > 1.0
            assert rows["unroll"].normalized_cycles <= rows["nosched"].normalized_cycles
        assert "Figure 8" in figure8.format_result(result)


class TestFigure9:
    def test_edp_exploration(self):
        result = figure9.run(benchmarks=("gsm_c",), full=False)
        assert len(result.rows) == 1
        row = result.rows[0]
        assert row.edp_gap >= 0.0
        assert row.edp_gap < 0.10
        assert "Figure 9" in figure9.format_result(result)


class TestSpeedup:
    def test_model_is_orders_of_magnitude_faster(self):
        result = speedup.run(benchmark="sha", configurations=4)
        assert result.configurations == 4
        assert result.model_seconds < result.simulation_seconds
        assert result.speedup_model_only > 50
        assert "Speedup" in speedup.format_result(result)


class TestRegistry:
    def test_registry_contains_all_figures(self):
        expected = {
            "table2", "figure3", "figure4", "figure5", "figure6",
            "figure7", "figure8", "figure9", "speedup",
        }
        assert set(ALL_EXPERIMENTS) == expected
        assert set(EXPERIMENTS) == expected

    def test_design_space_experiments_declare_full_in_metadata(self):
        # The old CLI hardcoded `name in ("figure5", "figure9")`; the
        # registry metadata is now the single source of truth.
        assert get_experiment("figure5").supports("full")
        assert get_experiment("figure9").supports("full")
        for name in ("table2", "figure3", "figure4", "figure6", "figure7",
                     "figure8", "speedup"):
            assert not get_experiment(name).supports("full")

    def test_smoke_presets_use_declared_options_only(self):
        for name in EXPERIMENTS:
            spec = get_experiment(name)
            assert set(spec.smoke) <= set(spec.options)

    def test_speedup_is_flagged_non_deterministic(self):
        assert not get_experiment("speedup").deterministic
        assert get_experiment("figure3").deterministic
