"""Unit tests for the cycle-accurate in-order pipeline simulator.

Absolute cycle counts include cold-cache effects, so most tests compare two
runs that differ in exactly one property (dependencies, latencies, width,
prediction) and check the difference against the microarchitectural
expectation.
"""

import pytest

from repro.isa import ProgramBuilder
from repro.machine import MachineConfig
from repro.pipeline import InOrderPipeline
from repro.profiler import profile_machine
from repro.trace import FunctionalSimulator, MemoryImage


def run_trace(builder: ProgramBuilder, machine: MachineConfig,
              memory: MemoryImage | None = None):
    trace = FunctionalSimulator(builder.build(), memory=memory).run()
    return InOrderPipeline(machine).run(trace), trace


def straightline_machine(**overrides) -> MachineConfig:
    """A test machine with near-free memory so cold compulsory misses do not
    drown out the effect each test isolates (dependencies, latencies, ...)."""
    defaults = dict(width=4, pipeline_stages=5, name="test",
                    l2_ns=1.0, memory_ns=2.0, tlb_miss_ns=1.0)
    defaults.update(overrides)
    return MachineConfig(**defaults)


def chain_program(length: int) -> ProgramBuilder:
    """``length`` dependent unit-latency instructions (a serial chain)."""
    b = ProgramBuilder("chain")
    b.li(1, 0)
    for _ in range(length):
        b.addi(1, 1, 1)
    b.halt()
    return b


def independent_program(length: int) -> ProgramBuilder:
    """``length`` mutually independent unit-latency instructions."""
    b = ProgramBuilder("independent")
    for index in range(length):
        b.li(1 + (index % 8), index)
    b.halt()
    return b


class TestBasicProperties:
    def test_cycles_at_least_n_over_w(self):
        machine = straightline_machine()
        result, trace = run_trace(independent_program(64), machine)
        assert result.cycles >= len(trace) / machine.width
        assert result.instructions == len(trace)
        assert result.cpi == pytest.approx(result.cycles / len(trace))
        assert result.ipc == pytest.approx(1.0 / result.cpi)

    def test_execution_time_uses_frequency(self):
        machine = straightline_machine(frequency_mhz=1000)
        result, _ = run_trace(independent_program(32), machine)
        assert result.execution_time_seconds == pytest.approx(result.cycles * 1e-9)

    def test_wider_machine_is_not_slower(self):
        narrow = straightline_machine(width=1)
        wide = straightline_machine(width=4)
        program = independent_program(128)
        narrow_cycles = run_trace(program, narrow)[0].cycles
        wide_cycles = run_trace(independent_program(128), wide)[0].cycles
        assert wide_cycles <= narrow_cycles

    def test_miss_counts_match_profiler(self, sha_trace, default_machine):
        """The detailed simulator and the profiler must observe identical misses."""
        simulated = InOrderPipeline(default_machine).run(sha_trace)
        profiled = profile_machine(sha_trace, default_machine)
        stats = simulated.hierarchy_stats
        assert stats.l1i_misses == profiled.l1i_misses
        assert stats.il2_misses == profiled.il2_misses
        assert stats.l1d_misses == profiled.l1d_misses
        assert stats.dl2_misses == profiled.dl2_misses
        assert stats.itlb_misses == profiled.itlb_misses
        assert stats.dtlb_misses == profiled.dtlb_misses
        assert simulated.mispredictions == profiled.mispredictions
        assert simulated.taken_bubbles == profiled.taken_bubbles


class TestDependencies:
    def test_serial_chain_runs_at_one_per_cycle(self):
        machine = straightline_machine(width=4)
        length = 200
        chain_cycles = run_trace(chain_program(length), machine)[0].cycles
        independent_cycles = run_trace(independent_program(length), machine)[0].cycles
        # The chain issues one instruction per cycle; the independent stream
        # runs close to the designed width (modulo cold fetch misses).
        assert chain_cycles >= length
        assert independent_cycles <= length * 0.6
        assert chain_cycles - independent_cycles >= length * 0.5

    def test_scalar_machine_hides_dependencies(self):
        machine = straightline_machine(width=1)
        length = 100
        chain_cycles = run_trace(chain_program(length), machine)[0].cycles
        independent_cycles = run_trace(independent_program(length), machine)[0].cycles
        # At width 1 both run at one instruction per cycle.
        assert abs(chain_cycles - independent_cycles) <= 4


class TestLongLatency:
    def test_dependent_multiply_chain_costs_latency(self):
        machine = straightline_machine(mul_latency=4)
        length = 50
        b_mul = ProgramBuilder("mulchain")
        b_mul.li(1, 3)
        for _ in range(length):
            b_mul.mul(1, 1, 1)
        b_mul.halt()
        b_add = chain_program(length)
        mul_cycles = run_trace(b_mul, machine)[0].cycles
        add_cycles = run_trace(b_add, machine)[0].cycles
        extra = mul_cycles - add_cycles
        assert extra >= length * (machine.mul_latency - 1) * 0.9

    def test_independent_multiplies_still_blocked_in_order(self):
        """In-order commit: even independent multiplies serialise the execute stage."""
        machine = straightline_machine(mul_latency=4)
        length = 50
        b_mul = ProgramBuilder("mulind")
        for index in range(length):
            b_mul.muli(1 + (index % 8), 0, 3)
        b_mul.halt()
        mul_cycles = run_trace(b_mul, machine)[0].cycles
        ind_cycles = run_trace(independent_program(length), machine)[0].cycles
        assert mul_cycles - ind_cycles >= length * (machine.mul_latency - 1) * 0.9

    def test_divide_costs_more_than_multiply(self):
        machine = straightline_machine(mul_latency=4, div_latency=20)
        b_div = ProgramBuilder("divchain")
        b_div.li(1, 1000)
        for _ in range(20):
            b_div.divi(1, 1, 1)
        b_div.halt()
        b_mul = ProgramBuilder("mulchain")
        b_mul.li(1, 1000)
        for _ in range(20):
            b_mul.muli(1, 1, 1)
        b_mul.halt()
        div_cycles = run_trace(b_div, machine)[0].cycles
        mul_cycles = run_trace(b_mul, machine)[0].cycles
        assert div_cycles - mul_cycles >= 20 * (20 - 4) * 0.9


class TestLoads:
    def test_load_use_bubble(self):
        machine = straightline_machine()
        memory = MemoryImage()
        memory.write_array(0x1000, list(range(64)))

        def loads_program(dependent: bool) -> ProgramBuilder:
            b = ProgramBuilder("loads")
            b.li(1, 0x1000)
            for index in range(64):
                b.lw(2, 1, (index % 16) * 4)
                if dependent:
                    b.addi(3, 2, 1)       # consumes the load immediately
                else:
                    b.addi(3, 4, 1)       # independent of the load
            b.halt()
            return b

        dependent_cycles = run_trace(loads_program(True), machine, memory.copy())[0].cycles
        independent_cycles = run_trace(loads_program(False), machine, memory.copy())[0].cycles
        # Each dependent pair pays roughly one load-use bubble.
        assert dependent_cycles > independent_cycles
        assert dependent_cycles - independent_cycles >= 64 * 0.5

    def test_data_cache_misses_block_the_pipeline(self):
        fast_memory = straightline_machine(memory_ns=10.0)
        slow_memory = straightline_machine(memory_ns=200.0)
        memory = MemoryImage()
        memory.write_array(0x1000, list(range(2048)))
        b = ProgramBuilder("stream")
        b.li(1, 0x1000)
        for index in range(128):
            b.lw(2, 1, index * 64)     # a new cache line every load
        b.halt()
        fast_cycles = run_trace(b, fast_memory, memory.copy())[0].cycles
        slow_cycles = run_trace(b, slow_memory, memory.copy())[0].cycles
        assert slow_cycles > fast_cycles + 128 * 50


class TestBranches:
    def _loop_program(self, iterations: int) -> ProgramBuilder:
        b = ProgramBuilder("loop")
        b.li(1, iterations)
        b.label("top")
        b.addi(2, 2, 1)
        b.addi(1, 1, -1)
        b.bne(1, 0, "top")
        b.halt()
        return b

    def test_misprediction_penalty_scales_with_frontend_depth(self):
        # always_not_taken mispredicts every taken loop branch.
        shallow = straightline_machine(pipeline_stages=5,
                                       branch_predictor="always_not_taken")
        deep = straightline_machine(pipeline_stages=9,
                                    branch_predictor="always_not_taken")
        iterations = 100
        shallow_cycles = run_trace(self._loop_program(iterations), shallow)[0].cycles
        deep_cycles = run_trace(self._loop_program(iterations), deep)[0].cycles
        per_branch = (deep_cycles - shallow_cycles) / iterations
        depth_delta = deep.frontend_depth - shallow.frontend_depth
        assert per_branch == pytest.approx(depth_delta, abs=1.5)

    def test_good_prediction_beats_bad_prediction(self):
        good = straightline_machine(branch_predictor="always_taken")
        bad = straightline_machine(branch_predictor="always_not_taken")
        iterations = 200
        good_result = run_trace(self._loop_program(iterations), good)[0]
        bad_result = run_trace(self._loop_program(iterations), bad)[0]
        assert good_result.mispredictions < bad_result.mispredictions
        assert good_result.cycles < bad_result.cycles

    def test_taken_bubbles_counted(self):
        machine = straightline_machine(branch_predictor="always_taken")
        result = run_trace(self._loop_program(50), machine)[0]
        # 49 correctly predicted taken branches.
        assert result.taken_bubbles == 49
        assert result.mispredictions == 1
