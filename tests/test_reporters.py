"""Reporter edge cases: CSV quoting, JSON round trips, format registry."""

from __future__ import annotations

import csv
import io
import json

import pytest

from repro.runtime.reporters import REPORTERS, render, render_csv, render_text
from repro.runtime.result import ExperimentResult


def _result(rows, footnotes=()):
    return ExperimentResult(
        experiment="edge",
        title="Edge cases",
        headers=("workload", "machine", "cpi"),
        rows=tuple(rows),
        footnotes=tuple(footnotes),
    )


class TestCSVQuoting:
    def test_commas_in_cells_are_quoted(self):
        # Sweep-generated machine names embed commas ("width=1,l2_size=1MB").
        result = _result([("sha", "width=1,l2_size=1MB", 1.25)])
        output = render_csv(result)
        assert '"width=1,l2_size=1MB"' in output
        parsed = list(csv.reader(io.StringIO(output)))
        assert parsed[1] == ["sha", "width=1,l2_size=1MB", "1.25"]

    def test_quotes_in_workload_names_are_escaped(self):
        result = _result([('say "cheese"', "m", 1.0)])
        parsed = list(csv.reader(io.StringIO(render_csv(result))))
        assert parsed[1][0] == 'say "cheese"'

    def test_newlines_and_none_cells(self):
        result = _result([("two\nlines", "m", None)])
        parsed = list(csv.reader(io.StringIO(render_csv(result))))
        assert parsed[1] == ["two\nlines", "m", ""]

    def test_headers_with_commas_are_quoted(self):
        result = ExperimentResult(
            experiment="edge", title="t",
            headers=("name", "cycles, total"), rows=(("a", 1),),
        )
        first_line = render_csv(result).splitlines()[0]
        assert first_line == 'name,"cycles, total"'


class TestJSONRoundTrip:
    def test_commas_quotes_and_none_survive(self):
        result = _result(
            [("adpcm_c", 'cfg "fast", wide', None),
             ("sha", "plain", 0.5)],
            footnotes=('note with "quotes", commas — and unicode (≤ 6%)',),
        )
        clone = ExperimentResult.from_json(render(result, "json"))
        assert clone == result
        assert clone.rows[0][2] is None
        assert clone.footnotes == result.footnotes

    def test_footnotes_render_in_text_only(self):
        result = _result([("sha", "m", 1.0)], footnotes=("a, footnote",))
        assert "a, footnote" in render_text(result)
        assert "a, footnote" not in render_csv(result)
        payload = json.loads(render(result, "json"))
        assert payload["footnotes"] == ["a, footnote"]


class TestReporterRegistry:
    def test_builtin_formats_registered(self):
        assert {"text", "json", "csv"} <= set(REPORTERS)

    def test_unknown_format_is_a_value_error(self):
        with pytest.raises(ValueError, match="unknown format"):
            render(_result([("a", "b", 1.0)]), "yaml")

    def test_custom_reporter_plugs_in(self):
        from repro.runtime.reporters import register_reporter

        @register_reporter("rowcount")
        def render_rowcount(result):
            return f"{result.experiment}: {len(result.rows)} rows"

        try:
            assert render(_result([("a", "b", 1.0)]), "rowcount") == "edge: 1 rows"
        finally:
            REPORTERS.unregister("rowcount")
