"""SearchSpace: exact counting, integer indexing, sampling, adapters.

The load-bearing invariant is the index bijection — ``overrides(i)`` and
``index_of`` must be exact inverses over the whole space, including
coupled and conditional axes — because the surrogate strategy navigates
the space through indices alone.  The adapter golden pins
``DesignSpace.to_search_space()`` to the legacy Table-2 enumeration
bit-for-bit, names included.
"""

from __future__ import annotations

import pytest

from repro.api.spec import MachineSpec
from repro.dse.space import DesignSpace, default_design_space, reduced_design_space
from repro.search import SearchSpace, SpaceAxis


def _conditional_space() -> SearchSpace:
    """L2 associativity only opens up for the larger L2 sizes."""
    return SearchSpace.make([
        {"axis": "width", "values": [1, 2]},
        {"axis": "l2_size", "values": [128 * 1024, 512 * 1024]},
        {"axis": "l2_associativity", "values": [8, 16],
         "when": "l2_size>=512KB"},
    ])


class TestAxes:
    def test_plain_mapping_form(self):
        space = SearchSpace.make({"width": [1, 2, 4], "l2_size": ["1MB"]})
        assert space.cardinality() == 3
        assert space.overrides(2) == {"width": 4, "l2_size": "1MB"}

    def test_coupled_axis_binds_all_fields(self):
        space = SearchSpace.make([
            {"axis": "pipeline_stages,frequency_mhz",
             "values": [[5, 600], [9, 1000]]},
        ])
        assert space.cardinality() == 2
        assert space.overrides(1) == {"pipeline_stages": 9,
                                      "frequency_mhz": 1000}

    def test_coupled_axis_rejects_wrong_arity(self):
        with pytest.raises(ValueError, match="needs 2-tuples"):
            SpaceAxis(key="pipeline_stages,frequency_mhz", values=((5,),))

    def test_empty_axis_rejected(self):
        with pytest.raises(ValueError, match="has no values"):
            SpaceAxis(key="width", values=())

    def test_duplicate_field_rejected(self):
        with pytest.raises(ValueError, match="more than one axis"):
            SearchSpace.make([
                {"axis": "width", "values": [1]},
                {"axis": "width,pipeline_stages", "values": [[2, 5]]},
            ])

    def test_when_must_test_machine_parameter(self):
        with pytest.raises(ValueError, match="must test a machine parameter"):
            SearchSpace.make([
                {"axis": "width", "values": [1, 2], "when": "cpi<2"},
            ]).cardinality()

    def test_when_on_unbound_field_names_the_problem(self):
        space = SearchSpace.make([
            {"axis": "l2_associativity", "values": [8, 16],
             "when": "area_proxy<=100"},
        ])
        with pytest.raises(ValueError, match="no earlier axis or base"):
            space.cardinality()


class TestIndexing:
    def test_cardinality_counts_conditional_collapse(self):
        # width(2) x [l2=128K -> 1 assoc choice; l2=512K -> 2] = 2 * 3 = 6.
        assert _conditional_space().cardinality() == 6

    def test_string_size_values_activate_conditions_by_byte_count(self):
        # "256KB" axis spellings must compare as bytes, not as strings —
        # a lexicographic comparison would activate the wrong branches.
        space = SearchSpace.make([
            {"axis": "l2_size", "values": ["128KB", "256KB", "512KB", "1MB"]},
            {"axis": "l2_associativity", "values": [8, 16],
             "when": "l2_size>=256KB"},
        ])
        assert space.cardinality() == 1 + 3 * 2
        active = {space.overrides(i)["l2_size"]
                  for i in range(len(space))
                  if "l2_associativity" in space.overrides(i)}
        assert active == {"256KB", "512KB", "1MB"}

    def test_round_trip_over_the_whole_space(self):
        space = _conditional_space()
        seen = set()
        for index in range(len(space)):
            overrides = space.overrides(index)
            assert space.index_of(overrides) == index
            seen.add(tuple(sorted(overrides.items())))
        assert len(seen) == len(space)  # all points distinct

    def test_inactive_axis_contributes_no_override(self):
        space = _conditional_space()
        small = [space.overrides(i) for i in range(len(space))
                 if space.overrides(i).get("l2_size") == 128 * 1024]
        assert small and all("l2_associativity" not in o for o in small)

    def test_index_out_of_range(self):
        with pytest.raises(IndexError, match="out of range"):
            _conditional_space().overrides(6)

    def test_index_of_rejects_off_axis_value(self):
        with pytest.raises(KeyError, match="no point of this space"):
            _conditional_space().index_of({"width": 3,
                                           "l2_size": 128 * 1024})

    def test_index_of_rejects_binding_inactive_axis(self):
        with pytest.raises(KeyError):
            _conditional_space().index_of({
                "width": 1, "l2_size": 128 * 1024, "l2_associativity": 16,
            })

    def test_leftmost_axis_most_significant(self):
        space = SearchSpace.make({"width": [1, 2], "l2_hit_cycles": [10, 20]})
        decoded = [space.overrides(i) for i in range(4)]
        assert [d["width"] for d in decoded] == [1, 1, 2, 2]
        assert [d["l2_hit_cycles"] for d in decoded] == [10, 20, 10, 20]

    def test_name_template_with_kb_helper(self):
        space = SearchSpace.make(
            [{"axis": "l2_size", "values": ["256KB", "1MB"]},
             {"axis": "width", "values": [2]}],
            name_template="w{width}_l2-{l2_size_kb}k",
        )
        assert space.spec(0).resolve().name == "w2_l2-256k"
        assert space.spec(1).resolve().name == "w2_l2-1024k"


class TestSampling:
    def test_deterministic_and_distinct(self):
        space = _conditional_space()
        first = space.sample(4, seed=7)
        assert first == space.sample(4, seed=7)
        assert len(set(first)) == 4
        assert first != space.sample(4, seed=8)

    def test_exclusion_is_respected(self):
        space = _conditional_space()
        exclude = {0, 1, 2}
        drawn = space.sample(3, seed=3, exclude=exclude)
        assert not set(drawn) & exclude

    def test_overdraw_returns_ascending_remainder(self):
        space = _conditional_space()
        assert space.sample(99, seed=0, exclude=[1, 4]) == [0, 2, 3, 5]

    def test_rejection_sampling_path_on_large_space(self):
        # Seven 4-value axes: 16384 points — beyond the shuffle threshold.
        fields = ["l1i_size", "l1d_size", "l2_size", "width",
                  "pipeline_stages", "l2_hit_cycles", "mul_latency"]
        space = SearchSpace.make({name: [1, 2, 3, 4] for name in fields})
        assert space.cardinality() == 4 ** 7
        drawn = space.sample(32, seed=11, exclude=range(100))
        assert drawn == space.sample(32, seed=11, exclude=range(100))
        assert len(set(drawn)) == 32
        assert all(100 <= index < 4 ** 7 for index in drawn)

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError, match="non-negative"):
            _conditional_space().sample(-1, seed=0)


class TestSerialization:
    def test_json_round_trip_preserves_decode(self):
        space = _conditional_space()
        clone = SearchSpace.from_json(space.to_json())
        assert clone.cardinality() == space.cardinality()
        for index in range(len(space)):
            assert clone.overrides(index) == space.overrides(index)

    def test_base_and_template_survive(self):
        space = SearchSpace.make(
            [{"axis": "width", "values": [1, 2]}],
            base={"preset": "paper_default", "l2_size": "1MB"},
            name_template="w{width}",
        )
        clone = SearchSpace.from_dict(space.to_dict())
        assert clone.base == space.base
        assert clone.spec(1).resolve().name == "w2"
        assert clone.spec(1).resolve().l2_size == 1024 * 1024

    def test_unknown_space_key_rejected(self):
        with pytest.raises(ValueError, match="unknown search-space keys"):
            SearchSpace.from_dict({"axes": [], "points": 5})

    def test_unknown_axis_key_rejected(self):
        with pytest.raises(ValueError, match="unknown axis keys"):
            SpaceAxis.from_dict({"axis": "width", "values": [1],
                                 "unless": "x"})

    def test_missing_axes_rejected(self):
        with pytest.raises(ValueError, match="needs an 'axes' list"):
            SearchSpace.from_dict({"base": {}})


class TestDesignSpaceAdapter:
    """`DesignSpace.to_search_space()` must replay Table 2 bit-for-bit."""

    @pytest.mark.parametrize("factory", [default_design_space,
                                         reduced_design_space],
                             ids=["full", "reduced"])
    def test_golden_against_legacy_enumeration(self, factory):
        design: DesignSpace = factory()
        space = design.to_search_space()
        legacy = design.configurations()
        assert space.cardinality() == len(design) == len(legacy)
        for index, expected in enumerate(legacy):
            resolved = space.spec(index).resolve()
            assert resolved == expected
            assert resolved.name == expected.name

    def test_base_spec_matches_design_base(self):
        space = default_design_space().to_search_space()
        assert space.base == MachineSpec.from_machine(DesignSpace().base)
