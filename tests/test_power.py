"""Tests for the analytical power/energy model."""

import pytest

from repro.core.model import predict_workload
from repro.machine import MachineConfig
from repro.power import PowerModel, PowerModelParameters
from repro.profiler import profile_machine, profile_program
from repro.workloads import get_workload


@pytest.fixture(scope="module")
def profiles(default_machine_module=None):
    workload = get_workload("gsm_c")
    trace = workload.trace()
    machine = MachineConfig(name="power-default")
    return (
        profile_program(trace),
        profile_machine(trace, machine),
        machine,
        predict_workload(workload, machine).cycles,
    )


class TestEnergyBreakdown:
    def test_total_is_dynamic_plus_leakage(self, profiles):
        program, misses, machine, cycles = profiles
        breakdown = PowerModel(machine).energy(program, misses, cycles)
        assert breakdown.total == pytest.approx(breakdown.dynamic + breakdown.leakage)
        assert breakdown.total > 0
        assert all(value >= 0 for value in breakdown.as_dict().values())

    def test_pipeline_energy_dominates_for_compute_kernel(self, profiles):
        program, misses, machine, cycles = profiles
        breakdown = PowerModel(machine).energy(program, misses, cycles)
        assert breakdown.pipeline > breakdown.memory * 0.01


class TestScalingTrends:
    def test_wider_core_costs_more_energy(self, profiles):
        program, misses, _, cycles = profiles
        narrow = PowerModel(MachineConfig(width=1)).energy(program, misses, cycles)
        wide = PowerModel(MachineConfig(width=4)).energy(program, misses, cycles)
        assert wide.total > narrow.total

    def test_bigger_l2_leaks_more(self, profiles):
        program, misses, _, cycles = profiles
        small = PowerModel(MachineConfig(l2_size=128 * 1024)).energy(program, misses, cycles)
        big = PowerModel(MachineConfig(l2_size=1024 * 1024)).energy(program, misses, cycles)
        assert big.leakage > small.leakage
        assert big.l2 > small.l2

    def test_higher_frequency_raises_dynamic_energy(self, profiles):
        program, misses, _, cycles = profiles
        slow = PowerModel(MachineConfig(frequency_mhz=600, pipeline_stages=5))
        fast = PowerModel(MachineConfig(frequency_mhz=1000, pipeline_stages=5))
        assert fast.energy(program, misses, cycles).dynamic > \
            slow.energy(program, misses, cycles).dynamic

    def test_longer_runtime_increases_leakage_only(self, profiles):
        program, misses, machine, cycles = profiles
        model = PowerModel(machine)
        short = model.energy(program, misses, cycles)
        long = model.energy(program, misses, cycles * 2)
        assert long.leakage > short.leakage
        assert long.dynamic == pytest.approx(short.dynamic)


class TestEDP:
    def test_edp_definition(self, profiles):
        program, misses, machine, cycles = profiles
        model = PowerModel(machine)
        energy = model.energy(program, misses, cycles).total
        time_seconds = cycles * machine.cycle_ns * 1e-9
        assert model.energy_delay_product(program, misses, cycles) == pytest.approx(
            energy * time_seconds
        )

    def test_average_power(self, profiles):
        program, misses, machine, cycles = profiles
        power = PowerModel(machine).average_power_watts(program, misses, cycles)
        # An embedded in-order core should land in the milliwatt-to-watt range.
        assert 1e-4 < power < 10.0
        assert PowerModel(machine).average_power_watts(program, misses, 0) == 0.0

    def test_custom_parameters(self, profiles):
        program, misses, machine, cycles = profiles
        cheap = PowerModelParameters(pipeline_energy_per_instruction_pj=1.0)
        expensive = PowerModelParameters(pipeline_energy_per_instruction_pj=100.0)
        cheap_energy = PowerModel(machine, cheap).energy(program, misses, cycles)
        expensive_energy = PowerModel(machine, expensive).energy(program, misses, cycles)
        assert expensive_energy.pipeline > cheap_energy.pipeline
