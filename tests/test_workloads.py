"""Tests for the workload kernels and the registry."""

import pytest

from repro.isa.opcodes import OpClass
from repro.workloads import (
    all_workload_names,
    get_workload,
    mibench_suite,
    spec_suite,
)
from repro.workloads.base import Workload
from repro.workloads.registry import MIBENCH_BUILDERS, SPEC_BUILDERS, clear_cache

#: The 19 benchmarks of the paper's Figure 3.
EXPECTED_MIBENCH = {
    "adpcm_c", "adpcm_d", "dijkstra", "gsm_c", "jpeg_c", "jpeg_d", "lame",
    "patricia", "qsort", "rsynth", "sha", "stringsearch", "susan_c",
    "susan_e", "susan_s", "tiff2bw", "tiff2rgba", "tiffdither", "tiffmedian",
}


class TestRegistry:
    def test_mibench_has_19_benchmarks(self):
        assert set(MIBENCH_BUILDERS) == EXPECTED_MIBENCH
        assert len(MIBENCH_BUILDERS) == 19

    def test_spec_suite_nonempty(self):
        assert len(SPEC_BUILDERS) >= 5

    def test_all_names(self):
        names = all_workload_names()
        assert set(names) == set(MIBENCH_BUILDERS) | set(SPEC_BUILDERS)
        assert names == sorted(names)

    def test_get_workload_caches(self):
        first = get_workload("sha")
        second = get_workload("sha")
        assert first is second
        fresh = get_workload("sha", use_cache=False)
        assert fresh is not first

    def test_unknown_workload(self):
        with pytest.raises(KeyError):
            get_workload("doom")

    def test_suite_selection(self):
        suite = mibench_suite(["sha", "qsort"])
        assert [w.name for w in suite] == ["sha", "qsort"]
        with pytest.raises(KeyError):
            mibench_suite(["mcf_like"])
        with pytest.raises(KeyError):
            spec_suite(["sha"])

    def test_clear_cache(self):
        first = get_workload("dijkstra")
        clear_cache()
        assert get_workload("dijkstra") is not first


@pytest.mark.parametrize("name", sorted(EXPECTED_MIBENCH))
def test_mibench_kernel_executes(name):
    """Every kernel terminates and produces a reasonably sized trace."""
    workload = get_workload(name)
    trace = workload.trace()
    assert 5_000 < len(trace) < 80_000
    assert trace.name == name
    assert isinstance(workload, Workload)
    assert workload.description


@pytest.mark.parametrize("name", sorted(SPEC_BUILDERS))
def test_spec_kernel_executes(name):
    workload = get_workload(name)
    trace = workload.trace()
    assert 5_000 < len(trace) < 80_000
    assert workload.category == "spec"


class TestWorkloadCharacteristics:
    """The kernels must exhibit the structure the paper's figures rely on."""

    def test_sha_is_alu_dominated_with_few_branches(self):
        mix = get_workload("sha").trace().instruction_mix()
        total = sum(mix.values())
        assert mix.get(OpClass.BRANCH, 0) / total < 0.10
        assert mix.get(OpClass.INT_ALU, 0) / total > 0.6

    def test_dijkstra_is_branch_and_load_heavy(self):
        mix = get_workload("dijkstra").trace().instruction_mix()
        total = sum(mix.values())
        branches = (mix.get(OpClass.BRANCH, 0) + mix.get(OpClass.JUMP, 0)) / total
        assert branches > 0.2
        assert mix.get(OpClass.LOAD, 0) / total > 0.12

    def test_tiff2bw_is_multiply_heavy(self):
        mix = get_workload("tiff2bw").trace().instruction_mix()
        total = sum(mix.values())
        assert mix.get(OpClass.INT_MUL, 0) / total > 0.12

    def test_lame_and_gsm_use_divide_or_multiply(self):
        for name in ("lame", "gsm_c"):
            mix = get_workload(name).trace().instruction_mix()
            assert mix.get(OpClass.INT_MUL, 0) + mix.get(OpClass.INT_DIV, 0) > 0

    def test_tiff2rgba_touches_the_largest_footprint(self):
        """tiff2rgba streams; its distinct-line footprint per instruction is high."""
        def lines_per_kiloinstruction(name):
            trace = get_workload(name).trace()
            lines = {d.mem_addr // 64 for d in trace if d.mem_addr is not None}
            return len(lines) / (len(trace) / 1000)

        assert lines_per_kiloinstruction("tiff2rgba") > lines_per_kiloinstruction("dijkstra")

    def test_mcf_like_is_memory_bound(self):
        trace = get_workload("mcf_like").trace()
        loads = [d for d in trace if d.is_load]
        lines = {d.mem_addr // 64 for d in loads}
        # Pointer chasing touches a fresh cache line for most node visits
        # (three loads per node, nodes visited in cache-hostile random order).
        assert len(lines) > len(loads) / 10

    def test_traces_are_deterministic(self):
        first = get_workload("qsort", use_cache=False).trace()
        second = get_workload("qsort", use_cache=False).trace()
        assert len(first) == len(second)
        assert [d.pc for d in first[:200]] == [d.pc for d in second[:200]]

    def test_qsort_actually_sorts(self):
        from repro.trace.functional import FunctionalSimulator
        from repro.workloads.kernels.automotive import build_qsort

        workload = build_qsort(size=50)
        simulator = FunctionalSimulator(workload.program, memory=workload.memory.copy())
        simulator.run()
        values = simulator.memory.read_array(0x3000, 50)
        assert values == sorted(values)

    def test_sha_state_changes(self):
        from repro.trace.functional import FunctionalSimulator
        from repro.workloads.kernels.security import build_sha

        workload = build_sha(blocks=2, rounds=8)
        simulator = FunctionalSimulator(workload.program, memory=workload.memory.copy())
        simulator.run()
        state = simulator.memory.read_array(0x400, 3)
        assert state != [0x67452301, 0xEFCDAB89, 0x98BADCFE]

    def test_workload_with_program_copies_data(self, sha_workload):
        clone = sha_workload.with_program(sha_workload.program.copy(), "copy")
        assert clone.name == "sha.copy"
        assert clone.memory is not sha_workload.memory
        assert clone.category == sha_workload.category
