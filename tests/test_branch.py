"""Unit tests for branch predictors and the branch profiler."""

import pytest

from repro.branch import (
    AlwaysNotTakenPredictor,
    AlwaysTakenPredictor,
    BimodalPredictor,
    GSharePredictor,
    HybridPredictor,
    LocalPredictor,
    make_predictor,
    profile_branches,
)
from repro.isa import ProgramBuilder
from repro.trace import FunctionalSimulator


def accuracy(predictor, stream):
    """Fraction of correct predictions on a (pc, taken) stream."""
    correct = 0
    for pc, taken in stream:
        if predictor.predict(pc) == taken:
            correct += 1
        predictor.update(pc, taken)
    return correct / len(stream)


class TestStaticPredictors:
    def test_always_taken(self):
        predictor = AlwaysTakenPredictor()
        assert predictor.predict(0x40) is True
        predictor.update(0x40, False)
        assert predictor.predict(0x40) is True
        assert predictor.storage_bits == 0

    def test_always_not_taken(self):
        predictor = AlwaysNotTakenPredictor()
        assert predictor.predict(0x40) is False


class TestBimodal:
    def test_learns_bias(self):
        predictor = BimodalPredictor(entries=256)
        stream = [(0x40, True)] * 50
        assert accuracy(predictor, stream) > 0.9

    def test_reset(self):
        predictor = BimodalPredictor(entries=256)
        for _ in range(10):
            predictor.update(0x40, False)
        predictor.reset()
        assert predictor.predict(0x40) is True   # counters re-initialised weakly taken

    def test_storage_bits(self):
        assert BimodalPredictor(entries=256).storage_bits == 512

    def test_invalid_entries(self):
        with pytest.raises(ValueError):
            BimodalPredictor(entries=100)


class TestGShare:
    def test_learns_alternating_pattern(self):
        """A pattern the bimodal predictor cannot learn but global history can."""
        pattern = [True, False] * 200
        stream = [(0x80, taken) for taken in pattern]
        gshare = GSharePredictor(history_bits=8)
        bimodal = BimodalPredictor(entries=256)
        assert accuracy(gshare, stream) > 0.85
        assert accuracy(bimodal, stream) < 0.75

    def test_reset_clears_history(self):
        predictor = GSharePredictor(history_bits=4)
        for taken in [True, False, True, True]:
            predictor.update(0x10, taken)
        predictor.reset()
        assert predictor._history == 0

    def test_invalid_history(self):
        with pytest.raises(ValueError):
            GSharePredictor(history_bits=0)


class TestLocal:
    def test_learns_per_branch_period(self):
        # Branch A: period-3 loop pattern (T, T, N); branch B always taken.
        stream = []
        pattern_a = [True, True, False] * 120
        for index, taken in enumerate(pattern_a):
            stream.append((0x100, taken))
            stream.append((0x200, True))
        predictor = LocalPredictor(history_bits=8, history_entries=64)
        assert accuracy(predictor, stream) > 0.85

    def test_invalid_config(self):
        with pytest.raises(ValueError):
            LocalPredictor(history_bits=0)
        with pytest.raises(ValueError):
            LocalPredictor(history_entries=100)


class TestHybrid:
    def test_beats_or_matches_components_on_mixed_stream(self):
        pattern_global = [True, False] * 150
        stream = []
        for index, taken in enumerate(pattern_global):
            stream.append((0x300, taken))                  # alternating branch
            stream.append((0x400, index % 3 != 0))          # period-3 branch
        hybrid_accuracy = accuracy(make_predictor("hybrid_3.5kb"), stream)
        assert hybrid_accuracy > 0.8

    def test_storage_budget(self):
        hybrid = make_predictor("hybrid_3.5kb")
        # 3.5KB = 28 Kbit; allow some slack around the nominal budget.
        assert 20_000 < hybrid.storage_bits < 40_000
        global_1kb = make_predictor("global_1kb")
        assert 8_000 <= global_1kb.storage_bits < 9_000


class TestFactory:
    def test_known_kinds(self):
        assert isinstance(make_predictor("global_1kb"), GSharePredictor)
        assert isinstance(make_predictor("hybrid_3.5kb"), HybridPredictor)
        assert isinstance(make_predictor("hybrid"), HybridPredictor)
        assert isinstance(make_predictor("bimodal"), BimodalPredictor)
        assert isinstance(make_predictor("always_taken"), AlwaysTakenPredictor)
        assert isinstance(make_predictor("always_not_taken"), AlwaysNotTakenPredictor)

    def test_unknown_kind(self):
        with pytest.raises(ValueError):
            make_predictor("neural")


class TestBranchProfiler:
    def _loop_trace(self, iterations=20):
        b = ProgramBuilder("loop")
        b.li(1, iterations)
        b.label("top")
        b.addi(1, 1, -1)
        b.bne(1, 0, "top")
        b.j("end")
        b.label("end")
        b.halt()
        return FunctionalSimulator(b.build()).run()

    def test_counts(self):
        trace = self._loop_trace(iterations=20)
        profile = profile_branches(trace, AlwaysTakenPredictor())
        assert profile.conditional_branches == 20
        assert profile.unconditional_jumps == 1
        assert profile.taken_branches == 19 + 1       # 19 taken loop branches + jump
        # Always-taken mispredicts only the final not-taken branch.
        assert profile.mispredictions == 1
        assert profile.predicted_taken_correct == 19
        assert profile.taken_bubbles == 20            # 19 correct taken + 1 jump
        assert profile.misprediction_rate == pytest.approx(1 / 20)

    def test_counts_with_not_taken_predictor(self):
        trace = self._loop_trace(iterations=10)
        profile = profile_branches(trace, AlwaysNotTakenPredictor())
        assert profile.mispredictions == 9
        assert profile.predicted_taken_correct == 0
        assert profile.taken_bubbles == 1              # only the unconditional jump

    def test_empty_branch_profile(self):
        b = ProgramBuilder()
        b.li(1, 1)
        b.halt()
        trace = FunctionalSimulator(b.build()).run()
        profile = profile_branches(trace, AlwaysTakenPredictor())
        assert profile.control_instructions == 0
        assert profile.misprediction_rate == 0.0
