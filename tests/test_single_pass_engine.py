"""Equivalence suite: single-pass engine vs. legacy replay profiling.

The stack-distance engine must reproduce the *exact* per-configuration
:class:`~repro.profiler.machine_stats.MissProfile` (L1I/L1D/L2/TLB miss
counts, MLP miss runs and branch statistics) of the legacy replay path.
The suite sweeps every MiBench workload across the Figure 5 design space
(its reduced form, the one ``figure5.run`` uses by default) and a set of
off-space geometries (smaller L1s, different line size, tiny TLB) that the
design space itself never varies.

The legacy side is memoized on the miss-relevant configuration fields —
width/depth/frequency do not influence miss counts — so the suite replays
each distinct hierarchy once while still asserting equality for every
(workload, configuration) pair.
"""

from __future__ import annotations

import dataclasses

import pytest

from repro.dse.space import reduced_design_space
from repro.machine import MachineConfig
from repro.profiler.machine_stats import MissProfile, profile_machine
from repro.profiler.single_pass_engine import SinglePassEngine
from repro.workloads import all_workload_names, get_workload
from repro.workloads.registry import MIBENCH_BUILDERS

#: Off-space configurations exercising geometry dimensions Table 2 fixes.
CUSTOM_CONFIGS = (
    MachineConfig(name="tiny_l1", l1i_size=8 * 1024, l1i_associativity=2,
                  l1d_size=8 * 1024, l1d_associativity=2),
    MachineConfig(name="narrow_lines", line_size=32, l2_size=256 * 1024),
    MachineConfig(name="tiny_tlb", tlb_entries=4, page_size=1024),
    MachineConfig(name="direct_mapped", l1i_associativity=1,
                  l1d_associativity=1, l2_associativity=1,
                  branch_predictor="bimodal"),
)


def _counts(profile: MissProfile) -> dict[str, int]:
    """All counter fields (everything except the machine back-reference)."""
    return {
        field.name: getattr(profile, field.name)
        for field in dataclasses.fields(profile)
        if field.name != "machine"
    }


def _replay_key(machine: MachineConfig) -> tuple:
    """The configuration fields that can influence a miss profile."""
    return (
        machine.l1i_size, machine.l1i_associativity,
        machine.l1d_size, machine.l1d_associativity,
        machine.l2_size, machine.l2_associativity,
        machine.line_size, machine.tlb_entries, machine.page_size,
        machine.branch_predictor,
    )


@pytest.mark.parametrize("name", sorted(MIBENCH_BUILDERS))
def test_engine_matches_replay_across_figure5_space(name):
    trace = get_workload(name).trace()
    engine = SinglePassEngine.for_trace(trace)
    replayed: dict[tuple, dict[str, int]] = {}
    for machine in reduced_design_space().configurations():
        key = _replay_key(machine)
        if key not in replayed:
            replayed[key] = _counts(profile_machine(trace, machine, exact=True))
        assert _counts(engine.miss_profile(machine)) == replayed[key], (
            f"{name}: single-pass profile diverges from replay on {machine.name}"
        )


@pytest.mark.parametrize("machine", CUSTOM_CONFIGS, ids=lambda m: m.name)
@pytest.mark.parametrize("name", ("sha", "dijkstra", "tiffmedian"))
def test_engine_matches_replay_off_space(name, machine):
    trace = get_workload(name).trace()
    exact = profile_machine(trace, machine, exact=True)
    fast = profile_machine(trace, machine)
    assert _counts(fast) == _counts(exact)


def test_engine_matches_replay_with_custom_mlp_window():
    trace = get_workload("tiffmedian").trace()
    machine = MachineConfig(l2_size=128 * 1024)
    for window in (1, 16, 256):
        exact = profile_machine(trace, machine, mlp_window=window, exact=True)
        fast = profile_machine(trace, machine, mlp_window=window)
        assert fast.dl2_miss_runs == exact.dl2_miss_runs


def test_negative_effective_addresses_match_replay():
    # A raw -1 in the mem_addrs column is a genuine address, not a sentinel;
    # the engine must feed it to the caches exactly like the replay path.
    from repro.isa import ProgramBuilder
    from repro.trace import FunctionalSimulator

    b = ProgramBuilder("neg_addr")
    b.li(1, 0)
    for _ in range(2):
        b.lw(2, 1, -1)
        b.lw(3, 1, 0)
    b.halt()
    trace = FunctionalSimulator(b.build()).run()
    machine = MachineConfig()
    assert _counts(profile_machine(trace, machine)) == _counts(
        profile_machine(trace, machine, exact=True)
    )


def test_engine_is_cached_on_the_trace():
    # A fresh workload: the registry-cached trace may already carry an
    # engine populated by other tests.
    trace = get_workload("sha", use_cache=False).trace()
    engine = SinglePassEngine.for_trace(trace)
    assert SinglePassEngine.for_trace(trace) is engine
    machine = MachineConfig()
    engine.miss_profile(machine)
    base_passes = len(engine._base_passes)
    l2_passes = len(engine._l2_passes)
    branch_profiles = len(engine._branch_profiles)
    # A second configuration differing only in width/depth reuses every pass.
    engine.miss_profile(machine.with_(width=1, pipeline_stages=5))
    assert len(engine._base_passes) == base_passes
    assert len(engine._l2_passes) == l2_passes
    assert len(engine._branch_profiles) == branch_profiles
    # A new L2 geometry adds exactly one (short) L2 pass, no base pass.
    engine.miss_profile(machine.with_(l2_size=128 * 1024))
    assert len(engine._base_passes) == base_passes
    assert len(engine._l2_passes) == l2_passes + 1
    # Same sets, different (size, associativity): 256KB 16-way aliases the
    # 128KB 8-way geometry, so the pass cache answers it for free.
    engine.miss_profile(machine.with_(l2_size=256 * 1024, l2_associativity=16))
    assert len(engine._l2_passes) == l2_passes + 1


def test_spec_suite_smoke_equivalence():
    """The SPEC-like kernels stress the memory system much harder; one
    default-machine equivalence point per workload guards the high-miss
    regime without replaying a whole space."""
    machine = MachineConfig()
    for name in all_workload_names():
        if name in MIBENCH_BUILDERS:
            continue
        trace = get_workload(name).trace()
        assert _counts(profile_machine(trace, machine)) == _counts(
            profile_machine(trace, machine, exact=True)
        ), name
