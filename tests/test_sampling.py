"""Interval sampling: estimator accuracy, error bars, caching, scale.

The headline contract (the paper-repro acceptance bar): on every MiBench
kernel, at every tested sampling rate, each estimated metric lies within
its *own reported* error bar of the exact streamed value — the bar is
centered on the estimate, so the check is ``|est - true| <= bar * est``.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys

import pytest

from repro.core.model import InOrderMechanisticModel
from repro.machine import DEFAULT_MACHINE
from repro.profiler.sampling import (
    MISS_METRICS,
    SAMPLING_SCHEMA_VERSION,
    interval_cache_key,
    sample_evaluate,
    systematic_plan,
)
from repro.profiler.streaming import StreamingEngine
from repro.runtime.session import Session
from repro.trace.store import TraceStore
from repro.trace.trace import ChunkedTrace
from repro.workloads import get_workload
from repro.workloads.registry import MIBENCH_BUILDERS
from repro.workloads.synthetic import (
    SyntheticWorkloadSpec,
    generate_synthetic_store,
    generate_synthetic_trace,
)

CHUNK_LENGTH = 1024
WARMUP = 4
WARMING = 2
RATES = (4, 10, 32)


# ----------------------------------------------------------------------
# Plans.
# ----------------------------------------------------------------------
def test_systematic_plan_geometry():
    plan = systematic_plan(100, 10, warmup=4)
    assert plan.census == (0, 1, 2, 3)
    assert plan.selected == tuple(range(4, 100, 10))
    assert plan.weight * len(plan.selected) == pytest.approx(96)
    assert not plan.exact
    assert 0.0 < plan.fraction < 1.0


def test_rate_one_plan_is_exact():
    plan = systematic_plan(12, 1, warmup=4)
    assert plan.exact
    assert plan.intervals_profiled == 12
    assert plan.weight == 1.0


def test_short_trace_degenerates_to_census():
    plan = systematic_plan(3, 10, warmup=4)
    assert plan.census == (0, 1, 2)
    assert plan.selected == ()
    assert plan.exact


def test_plan_rejects_bad_parameters():
    with pytest.raises(ValueError, match="rate"):
        systematic_plan(10, 0)
    with pytest.raises(ValueError, match="warmup"):
        systematic_plan(10, 2, warmup=-1)


# ----------------------------------------------------------------------
# The acceptance bar: every kernel, every rate, inside its own error bar.
# ----------------------------------------------------------------------
@pytest.mark.parametrize("name", sorted(MIBENCH_BUILDERS))
def test_error_bars_bracket_truth_on_mibench(name):
    trace = get_workload(name).trace()
    chunked = ChunkedTrace.from_trace(trace, CHUNK_LENGTH)
    engine = StreamingEngine.for_chunked(chunked)
    exact_misses = engine.miss_profile(DEFAULT_MACHINE)
    exact = InOrderMechanisticModel(DEFAULT_MACHINE).predict(
        engine.program_profile(), exact_misses
    )
    cache: dict = {}
    for rate in RATES:
        sampled = sample_evaluate(chunked, DEFAULT_MACHINE, rate,
                                  warmup=WARMUP, warming=WARMING,
                                  cache=cache)
        assert sampled.instructions == len(trace)
        bar = sampled.est_rel_error["cpi"] * sampled.cpi
        assert abs(sampled.cpi - exact.cpi) <= bar + 1e-12, (
            f"{name} rate={rate}: cpi {sampled.cpi:.4f} vs {exact.cpi:.4f} "
            f"outside +-{bar:.4f}"
        )
        for metric in MISS_METRICS:
            estimate = getattr(sampled.misses, metric)
            truth = getattr(exact_misses, metric)
            radius = sampled.est_rel_error[metric] * max(estimate, 1.0)
            assert abs(estimate - truth) <= radius + 1e-9, (
                f"{name} rate={rate} {metric}: {estimate:.1f} vs {truth} "
                f"outside +-{radius:.1f}"
            )


def test_census_only_trace_is_answered_exactly():
    """A trace no longer than the warmup prefix has zero sampling error."""
    trace = generate_synthetic_trace(
        SyntheticWorkloadSpec(instructions=3 * CHUNK_LENGTH, seed=3)
    )
    chunked = ChunkedTrace.from_trace(trace, CHUNK_LENGTH)
    sampled = sample_evaluate(chunked, DEFAULT_MACHINE, 10, warmup=WARMUP)
    engine = StreamingEngine.for_chunked(chunked)
    exact_misses = engine.miss_profile(DEFAULT_MACHINE)
    assert sampled.plan.exact
    for metric in MISS_METRICS:
        assert getattr(sampled.misses, metric) == pytest.approx(
            getattr(exact_misses, metric))
        assert sampled.est_rel_error[metric] == 0.0
    exact = InOrderMechanisticModel(DEFAULT_MACHINE).predict(
        engine.program_profile(), exact_misses)
    # Counts are exact; CPI carries only the dependency edges truncated at
    # chunk boundaries (a per-boundary effect, vanishing with chunk size).
    assert sampled.cpi == pytest.approx(exact.cpi, rel=1e-3)
    assert sampled.est_rel_error["cpi"] == 0.0


# ----------------------------------------------------------------------
# Interval-record caching.
# ----------------------------------------------------------------------
def test_nested_rates_share_cached_intervals():
    trace = get_workload("adpcm_c").trace()
    chunked = ChunkedTrace.from_trace(trace, CHUNK_LENGTH)
    cache: dict = {}
    coarse = sample_evaluate(chunked, DEFAULT_MACHINE, 32, warmup=WARMUP,
                             warming=WARMING, cache=cache)
    assert coarse.cache_hits == 0 and coarse.cache_misses > 0
    # Rate 4 selects a superset of rate 32's chunks (32 is a multiple of
    # 4), so every coarse interval is reused.
    fine = sample_evaluate(chunked, DEFAULT_MACHINE, 4, warmup=WARMUP,
                           warming=WARMING, cache=cache)
    assert fine.cache_hits >= len(coarse.plan.selected)
    # And re-running the same plan is answered entirely from cache.
    again = sample_evaluate(chunked, DEFAULT_MACHINE, 4, warmup=WARMUP,
                            warming=WARMING, cache=cache)
    assert again.cache_misses == 0
    assert again.cpi == fine.cpi


def test_interval_cache_key_is_content_addressed():
    trace = generate_synthetic_trace(
        SyntheticWorkloadSpec(instructions=8 * CHUNK_LENGTH, seed=5))
    a = ChunkedTrace.from_trace(trace, CHUNK_LENGTH)
    b = ChunkedTrace.from_trace(trace, CHUNK_LENGTH)
    key = interval_cache_key(a, 5, DEFAULT_MACHINE, 64, WARMING)
    assert key == interval_cache_key(b, 5, DEFAULT_MACHINE, 64, WARMING)
    assert str(SAMPLING_SCHEMA_VERSION) in key
    # Different warming window, machine or MLP window -> different record.
    assert key != interval_cache_key(a, 5, DEFAULT_MACHINE, 64, WARMING + 1)
    assert key != interval_cache_key(a, 5, DEFAULT_MACHINE, 32, WARMING)
    assert key != interval_cache_key(a, 6, DEFAULT_MACHINE, 64, WARMING)


def test_session_persists_interval_profiles(tmp_path):
    store_path = tmp_path / "store"
    spec = SyntheticWorkloadSpec(instructions=20_000, seed=9)
    generate_synthetic_store(store_path, spec, chunk_length=CHUNK_LENGTH)

    cold = Session(cache_dir=tmp_path / "cache")
    first = cold.sample_evaluate(TraceStore.open(store_path),
                                 DEFAULT_MACHINE, rate=8, warming=WARMING)
    assert cold.stats.interval_profiles_built > 0
    assert cold.stats.interval_cache_hits == 0

    warm = Session(cache_dir=tmp_path / "cache")
    second = warm.sample_evaluate(TraceStore.open(store_path),
                                  DEFAULT_MACHINE, rate=8, warming=WARMING)
    assert warm.stats.interval_profiles_built == 0
    assert warm.stats.interval_cache_hits == first.cache_misses
    assert second.cpi == first.cpi
    assert second.est_rel_error == first.est_rel_error


def test_session_without_cache_dir_memoizes_in_process():
    trace = generate_synthetic_trace(
        SyntheticWorkloadSpec(instructions=12 * CHUNK_LENGTH, seed=11))
    session = Session()
    chunked = ChunkedTrace.from_trace(trace, CHUNK_LENGTH)
    session.sample_evaluate(chunked, DEFAULT_MACHINE, rate=4)
    built = session.stats.interval_profiles_built
    assert built > 0
    session.sample_evaluate(chunked, DEFAULT_MACHINE, rate=4)
    assert session.stats.interval_profiles_built == built
    assert session.stats.interval_cache_hits == built


# ----------------------------------------------------------------------
# API surface.
# ----------------------------------------------------------------------
def test_to_eval_result_round_trips():
    from repro.api.spec import EvalResult

    trace = get_workload("adpcm_c").trace()
    chunked = ChunkedTrace.from_trace(trace, CHUNK_LENGTH)
    sampled = sample_evaluate(chunked, DEFAULT_MACHINE, 10, warmup=WARMUP,
                              warming=WARMING)
    result = sampled.to_eval_result()
    assert result.backend == "analytical_sampled"
    assert result.cpi == pytest.approx(sampled.cpi)
    assert result.sampling["rate"] == 10
    assert result.sampling["est_rel_error"] == sampled.est_rel_error
    assert sum(result.cpi_stack.values()) == pytest.approx(result.cycles)
    clone = EvalResult.from_json(result.to_json())
    assert clone == result


def test_sampling_metadata_shape():
    trace = get_workload("adpcm_c").trace()
    chunked = ChunkedTrace.from_trace(trace, CHUNK_LENGTH)
    sampled = sample_evaluate(chunked, DEFAULT_MACHINE, 10)
    payload = sampled.to_dict()
    assert payload["schema_version"] == SAMPLING_SCHEMA_VERSION
    assert payload["num_chunks"] == chunked.num_chunks
    assert 0.0 < payload["fraction"] < 1.0
    assert set(payload["est_rel_error"]) == set(MISS_METRICS) | {"cpi"}


# ----------------------------------------------------------------------
# Long workloads at bounded memory (the 100x acceptance check).
# ----------------------------------------------------------------------
_RSS_CHILD = r"""
import json, resource, sys, tempfile
from repro.workloads.synthetic import (
    SyntheticWorkloadSpec, generate_synthetic_store)
from repro.profiler.sampling import sample_evaluate
from repro.profiler.streaming import StreamingEngine
from repro.machine import DEFAULT_MACHINE

baseline = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss / 1024.0
with tempfile.TemporaryDirectory() as tmp:
    chunked = generate_synthetic_store(
        tmp + "/store", SyntheticWorkloadSpec(instructions=10_000, seed=1),
        scale=100, chunk_length=8192)
    sampled = sample_evaluate(chunked, DEFAULT_MACHINE, 32, warmup=4,
                              warming=1)
    exact = StreamingEngine.for_chunked(chunked).miss_profile(
        DEFAULT_MACHINE)
    peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss / 1024.0
    print(json.dumps({
        "instructions": len(chunked),
        "cpi": sampled.cpi,
        "dl2_exact": exact.dl2_misses,
        "delta_mb": peak - baseline,
    }))
"""


def test_100x_workload_profiles_at_bounded_rss():
    """Generate + sample + exactly stream a 100x workload in a child
    process and assert the resident-set growth stays bounded (far below
    the in-memory trace footprint)."""
    env = {**os.environ,
           "REPRO_ACCEL": "numpy",
           "PYTHONPATH": os.pathsep.join(p for p in sys.path if p)}
    proc = subprocess.run([sys.executable, "-c", _RSS_CHILD], env=env,
                          capture_output=True, text=True, check=True)
    report = json.loads(proc.stdout.strip().splitlines()[-1])
    assert report["instructions"] == 1_000_000
    assert report["cpi"] > 1.0
    assert report["dl2_exact"] >= 0
    # The 1M-row column set alone is ~34MB and a materialized in-memory
    # trace several times that; streamed processing must stay well under.
    assert report["delta_mb"] < 64.0, report
