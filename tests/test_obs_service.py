"""Observability through the service: traced requests, Prometheus export.

The acceptance-criteria check lives in
:class:`TestServedTracing.test_served_sweep_yields_one_cross_process_tree`:
one served ``POST /v1/sweep`` with tracing enabled and ``jobs=2`` produces
a single Chrome-trace-event tree — one trace id, one root, every other
span reachable from it — spanning the server process *and* its pool
worker processes.
"""

from __future__ import annotations

import http.client
import json
import os

import pytest

from repro.obs import tracing
from repro.obs.report import load_events
from repro.service import ServerThread, ServiceClient, ServiceConfig

SWEEP = {"workloads": ["sha", "qsort", "dijkstra"],
         "axes": {"l2_size": ["256KB", "1MB"]}}


@pytest.fixture(autouse=True)
def _tracing_disabled_after():
    yield
    tracing.configure(None)
    os.environ.pop(tracing.TRACE_ENV, None)


def _serve(tmp_path, jobs=2):
    return ServerThread(ServiceConfig(
        port=0, jobs=jobs, max_queue=16,
        cache_dir=str(tmp_path / "cache"),
    ))


def _request_raw(port, method, path, body=None, headers=None):
    connection = http.client.HTTPConnection("127.0.0.1", port, timeout=60)
    try:
        connection.request(method, path, body=body, headers=headers or {})
        response = connection.getresponse()
        return response.status, dict(response.getheaders()), response.read()
    finally:
        connection.close()


class TestServedTracing:
    def test_served_sweep_yields_one_cross_process_tree(self, tmp_path):
        out = tmp_path / "spans.jsonl"
        tracing.configure(str(out))  # before the server: workers inherit it
        with _serve(tmp_path) as running:
            client = ServiceClient(port=running.port)
            client.wait_ready()
            results = client.sweep(SWEEP)
        assert len(results) == 6
        events = load_events(str(out))
        # The sweep's trace is the one rooted at its service.request span
        # (wait_ready's health probes trace separately).
        roots = [event for event in events
                 if event["name"] == "service.request"
                 and event["args"].get("path") == "/v1/sweep"]
        assert len(roots) == 1
        root = roots[0]
        trace_id = root["args"]["trace_id"]
        tree = [event for event in events
                if event["args"]["trace_id"] == trace_id]
        names = {event["name"] for event in tree}
        assert {"service.request", "service.queue_wait", "service.evaluate",
                "planner.plan", "planner.dispatch", "planner.group",
                "planner.profile", "planner.model"} <= names
        # One coherent tree: exactly one parentless span, and every
        # parent_id resolves to a span in the same trace.
        span_ids = {event["args"]["span_id"] for event in tree}
        orphans = [event for event in tree
                   if "parent_id" not in event["args"]]
        assert orphans == [root]
        assert all(event["args"]["parent_id"] in span_ids
                   for event in tree if "parent_id" in event["args"])
        # ...spanning the server process and at least one pool worker.
        pids = {event["pid"] for event in tree}
        server_pid = root["pid"]
        assert server_pid == os.getpid()  # ServerThread runs in-process
        assert pids - {server_pid}, "no spans from worker processes"
        # Every line is a Chrome complete event Perfetto can load as-is.
        assert all(event["ph"] == "X" and "ts" in event and "dur" in event
                   for event in events)

    def test_trace_header_is_parsed_and_echoed(self, tmp_path):
        out = tmp_path / "spans.jsonl"
        tracing.configure(str(out))
        body = json.dumps({"workload": "sha"}).encode()
        with _serve(tmp_path, jobs=1) as running:
            ServiceClient(port=running.port).wait_ready()
            status, headers, _ = _request_raw(
                running.port, "POST", "/v1/eval", body,
                {"Content-Type": "application/json",
                 tracing.TRACE_HEADER: "cafe1234:beef5678"},
            )
        assert status == 200
        assert headers[tracing.TRACE_HEADER] == "cafe1234"
        (root,) = [event for event in load_events(str(out))
                   if event["name"] == "service.request"
                   and event["args"].get("path") == "/v1/eval"]
        assert root["args"]["trace_id"] == "cafe1234"
        assert root["args"]["parent_id"] == "beef5678"

    def test_client_propagates_its_context_into_the_server(self, tmp_path):
        out = tmp_path / "spans.jsonl"
        tracing.configure(str(out))
        with _serve(tmp_path, jobs=1) as running:
            client = ServiceClient(port=running.port)
            client.wait_ready()
            with tracing.span("test.caller") as caller:
                client.evaluate({"workload": "sha"})
                trace_id = caller.context.trace_id
        events = load_events(str(out))
        (root,) = [event for event in events
                   if event["name"] == "service.request"
                   and event["args"]["trace_id"] == trace_id]
        assert root["args"]["parent_id"]  # parented under the caller's span

    def test_disabled_tracing_echoes_incoming_header(self, tmp_path):
        tracing.configure(None)
        with _serve(tmp_path, jobs=1) as running:
            ServiceClient(port=running.port).wait_ready()
            _, headers, _ = _request_raw(
                running.port, "GET", "/v1/health", None,
                {tracing.TRACE_HEADER: "feedface"},
            )
            assert headers[tracing.TRACE_HEADER] == "feedface"
            _, headers, _ = _request_raw(running.port, "GET", "/v1/health")
            assert tracing.TRACE_HEADER not in headers


class TestServedMetrics:
    def test_prometheus_endpoint_renders_service_and_session(self, tmp_path):
        with _serve(tmp_path, jobs=1) as running:
            client = ServiceClient(port=running.port)
            client.wait_ready()
            client.evaluate({"workload": "sha"})
            text = client.metrics_prometheus()
        assert "# TYPE repro_http_requests_total counter" in text
        assert 'repro_http_requests_total{endpoint="POST /v1/eval"} 1' in text
        assert "# TYPE repro_http_request_seconds histogram" in text
        assert "repro_uptime_seconds" in text
        assert "repro_queue_depth" in text
        # The session's registry rides along in the same exposition.
        assert 'repro_session_events_total{event="traces_generated"}' in text
        assert "# TYPE repro_stage_seconds_total counter" in text

    def test_prometheus_content_type(self, tmp_path):
        with _serve(tmp_path, jobs=1) as running:
            ServiceClient(port=running.port).wait_ready()
            _, headers, body = _request_raw(
                running.port, "GET", "/v1/metrics?format=prometheus")
        assert headers["Content-Type"].startswith("text/plain; version=0.0.4")
        assert body.decode().endswith("\n")

    def test_snapshot_has_in_flight_and_queue_wait(self, tmp_path):
        with _serve(tmp_path, jobs=1) as running:
            client = ServiceClient(port=running.port)
            client.wait_ready()
            client.evaluate({"workload": "sha"})
            metrics = client.metrics()
        eval_stats = metrics["endpoints"]["POST /v1/eval"]
        # The eval finished before /v1/metrics was answered.
        assert eval_stats["in_flight"] == 0
        assert eval_stats["count"] == 1 and eval_stats["errors"] == 0
        wait = metrics["queue_wait_ms"]
        assert set(wait) == {"p50", "p90", "p99"}
        assert all(value >= 0 for value in wait.values())
