"""Unit tests for the program and program-machine profilers."""

import pytest

from repro.isa import ProgramBuilder
from repro.profiler import (
    collect_dependencies,
    collect_instruction_mix,
    profile_machine,
    profile_program,
)
from repro.profiler.dependences import KIND_LOAD, KIND_LONG, KIND_UNIT
from repro.isa.opcodes import OpClass
from repro.trace import FunctionalSimulator, MemoryImage


def trace_of(builder: ProgramBuilder, memory: MemoryImage | None = None):
    return FunctionalSimulator(builder.build(), memory=memory).run()


class TestInstructionMix:
    def test_counts_and_fractions(self):
        b = ProgramBuilder("mix")
        b.li(1, 0x100)
        b.lw(2, 1, 0)
        b.mul(3, 2, 2)
        b.div(4, 3, 2)
        b.sw(4, 1, 4)
        b.beq(4, 4, "end")
        b.label("end")
        b.halt()
        mix = collect_instruction_mix(trace_of(b))
        assert mix.total == 7
        assert mix.loads == 1
        assert mix.stores == 1
        assert mix.multiplies == 1
        assert mix.divides == 1
        assert mix.branches == 1
        assert mix.jumps == 0
        assert mix.control == 1
        assert mix.fraction(OpClass.LOAD) == pytest.approx(1 / 7)

    def test_empty_fraction(self):
        b = ProgramBuilder()
        b.halt()
        mix = collect_instruction_mix(trace_of(b))
        assert mix.fraction(OpClass.LOAD) == 0.0


class TestDependencyProfile:
    def test_unit_dependency_distance(self):
        b = ProgramBuilder()
        b.li(1, 5)          # producer (unit)
        b.nop()
        b.addi(2, 1, 1)     # consumer at distance 2
        b.halt()
        deps = collect_dependencies(trace_of(b))
        assert deps.count(KIND_UNIT, 2) == 1
        assert deps.total(KIND_UNIT) == 1
        assert deps.total() == 1

    def test_long_and_load_producers(self):
        memory = MemoryImage()
        memory.store_word(0x100, 3)
        b = ProgramBuilder()
        b.li(1, 0x100)
        b.lw(2, 1, 0)       # load producer (consumer of r1 at distance 1 too)
        b.addi(3, 2, 1)     # depends on the load at distance 1
        b.mul(4, 3, 3)      # unit-producer dependency
        b.addi(5, 4, 1)     # depends on the multiply at distance 1
        b.halt()
        deps = collect_dependencies(trace_of(b, memory))
        assert deps.count(KIND_LOAD, 1) == 1
        assert deps.count(KIND_LONG, 1) == 1
        assert deps.count(KIND_UNIT, 1) >= 2   # lw on li, mul on addi

    def test_shortest_distance_wins_for_two_producers(self):
        b = ProgramBuilder()
        b.li(1, 5)          # distance 3 producer of r1
        b.nop()
        b.li(2, 7)          # distance 1 producer of r2
        b.add(3, 1, 2)      # consumer with two producers
        b.halt()
        deps = collect_dependencies(trace_of(b))
        assert deps.count(KIND_UNIT, 1) == 1
        assert deps.count(KIND_UNIT, 3) == 0

    def test_dependency_through_overwritten_register_is_renewed(self):
        b = ProgramBuilder()
        b.li(1, 5)
        b.li(1, 6)          # overwrites; the later consumer depends on this one
        b.addi(2, 1, 1)
        b.halt()
        deps = collect_dependencies(trace_of(b))
        assert deps.count(KIND_UNIT, 1) == 1
        assert deps.count(KIND_UNIT, 2) == 0

    def test_distance_cap(self):
        b = ProgramBuilder()
        b.li(1, 5)
        for _ in range(70):
            b.nop()
        b.addi(2, 1, 1)
        b.halt()
        deps = collect_dependencies(trace_of(b), max_distance=64)
        assert deps.total() == 0

    def test_histogram_accessor_rejects_unknown_kind(self):
        deps = collect_dependencies(trace_of(_simple_builder()))
        with pytest.raises(KeyError):
            deps.histogram("weird")


def _simple_builder() -> ProgramBuilder:
    b = ProgramBuilder()
    b.li(1, 1)
    b.halt()
    return b


class TestProgramProfile:
    def test_profile_program(self, sha_trace):
        profile = profile_program(sha_trace)
        assert profile.name == "sha"
        assert profile.instructions == len(sha_trace)
        assert profile.mix.total == len(sha_trace)
        assert profile.dependencies.total() > 0
        assert profile.loads == profile.mix.loads


class TestMissProfile:
    def test_miss_counts_match_hierarchy_invariants(self, sha_trace, default_machine):
        misses = profile_machine(sha_trace, default_machine)
        assert misses.instructions == len(sha_trace)
        assert misses.l1i_misses >= misses.il2_misses
        assert misses.l1d_misses >= misses.dl2_misses
        assert misses.l1i_l2_hits == misses.l1i_misses - misses.il2_misses
        assert misses.l1d_l2_hits == misses.l1d_misses - misses.dl2_misses
        assert misses.dl2_miss_runs <= max(1, misses.dl2_misses)
        assert 0.0 <= misses.misprediction_rate <= 1.0

    def test_branch_counts_consistent_with_trace(self, dijkstra_trace, default_machine):
        misses = profile_machine(dijkstra_trace, default_machine)
        conditional = sum(1 for d in dijkstra_trace if d.is_branch)
        assert misses.conditional_branches == conditional
        assert misses.mispredictions <= conditional
        taken = sum(1 for d in dijkstra_trace if d.is_control and d.taken)
        assert misses.taken_bubbles <= taken

    def test_better_predictor_mispredicts_less(self, dijkstra_trace, default_machine):
        weak = default_machine.with_(branch_predictor="always_not_taken")
        strong = default_machine.with_(branch_predictor="hybrid_3.5kb")
        weak_misses = profile_machine(dijkstra_trace, weak)
        strong_misses = profile_machine(dijkstra_trace, strong)
        assert strong_misses.mispredictions < weak_misses.mispredictions

    def test_smaller_l2_misses_more(self, sha_trace, default_machine):
        small = default_machine.with_(l2_size=128 * 1024)
        big = default_machine.with_(l2_size=1024 * 1024)
        small_misses = profile_machine(sha_trace, small)
        big_misses = profile_machine(sha_trace, big)
        assert small_misses.dl2_misses + small_misses.il2_misses >= \
            big_misses.dl2_misses + big_misses.il2_misses
