"""Tests for the trace data structures."""

from collections import Counter

import pytest

from repro.isa import Instruction, Opcode
from repro.isa.opcodes import OpClass
from repro.trace import Trace
from repro.trace.trace import OP_CLASS_BY_ID, DynamicInstruction
from repro.workloads import get_workload


def _dyn(seq, opcode, **kwargs):
    instruction_kwargs = {}
    for key in ("dest", "src1", "src2", "imm", "target"):
        if key in kwargs:
            instruction_kwargs[key] = kwargs.pop(key)
    return DynamicInstruction(
        seq=seq,
        pc=seq * 4,
        instruction=Instruction(opcode, **instruction_kwargs),
        **kwargs,
    )


class TestDynamicInstruction:
    def test_property_passthrough(self):
        load = _dyn(0, Opcode.LW, dest=1, src1=2, mem_addr=0x100)
        assert load.is_load and not load.is_store
        assert load.op_class is OpClass.LOAD
        assert load.dest_regs() == (1,)
        assert load.src_regs() == (2,)

        branch = _dyn(1, Opcode.BNE, src1=1, src2=2, target="x", taken=True)
        assert branch.is_branch and branch.is_control
        mul = _dyn(2, Opcode.MUL, dest=3, src1=1, src2=2)
        assert mul.is_long_latency


class TestTrace:
    def _trace(self):
        return Trace(
            [
                _dyn(0, Opcode.LI, dest=1, imm=5),
                _dyn(1, Opcode.LW, dest=2, src1=1, mem_addr=0x40),
                _dyn(2, Opcode.MUL, dest=3, src1=2, src2=2),
                _dyn(3, Opcode.SW, src1=1, src2=3, mem_addr=0x44),
                _dyn(4, Opcode.BNE, src1=3, src2=0, target="x", taken=False),
                _dyn(5, Opcode.J, target="x", taken=True),
            ],
            name="synthetic",
        )

    def test_len_iter_getitem(self):
        trace = self._trace()
        assert len(trace) == 6
        assert trace[0].instruction.opcode is Opcode.LI
        assert len(list(iter(trace))) == 6
        assert trace.name == "synthetic"
        assert len(trace.instructions) == 6

    def test_count_and_mix(self):
        trace = self._trace()
        assert trace.count(OpClass.LOAD) == 1
        assert trace.count(OpClass.STORE) == 1
        mix = trace.instruction_mix()
        assert mix[OpClass.INT_MUL] == 1
        assert mix[OpClass.BRANCH] == 1
        assert mix[OpClass.JUMP] == 1
        assert sum(mix.values()) == 6

    def test_memory_and_branch_iterators(self):
        trace = self._trace()
        assert len(list(trace.memory_accesses())) == 2
        assert len(list(trace.branches())) == 2


@pytest.fixture(scope="module", params=["sha", "dijkstra", "qsort"])
def columnar_trace(request):
    """A simulator-built (columnar, not yet materialized) trace."""
    return get_workload(request.param, use_cache=False).trace()


class TestColumnarFacade:
    """Property-style checks: the packed columns and the DynamicInstruction
    facade must describe the same dynamic stream."""

    def test_columns_share_the_trace_length(self, columnar_trace):
        trace = columnar_trace
        n = len(trace)
        assert n > 0
        for column in (trace.pcs, trace.next_pcs, trace.mem_addrs,
                       trace.op_classes, trace.taken, trace.static_index,
                       trace.seqs):
            assert len(column) == n

    def test_single_indexing_matches_columns_before_materialization(self):
        trace = get_workload("sha", use_cache=False).trace()
        for index in (0, 1, len(trace) // 2, len(trace) - 1, -1):
            dyn = trace[index]
            row = index if index >= 0 else index + len(trace)
            assert dyn.seq == row
            assert dyn.pc == trace.pcs[row]
            assert dyn.pc == trace.static_index[row] * 4
            assert dyn.next_pc == trace.next_pcs[row]
            assert dyn.instruction is trace.statics[trace.static_index[row]]
        with pytest.raises(IndexError):
            trace[len(trace)]

    def test_iteration_matches_indexing(self, columnar_trace):
        trace = columnar_trace
        materialized = list(trace)
        assert len(materialized) == len(trace)
        for index in (0, len(trace) // 3, len(trace) - 1):
            assert trace[index] == materialized[index]
        assert trace[2:5] == materialized[2:5]

    def test_facade_fields_roundtrip_the_columns(self, columnar_trace):
        trace = columnar_trace
        for row, dyn in enumerate(trace):
            assert dyn.op_class is OP_CLASS_BY_ID[trace.op_classes[row]]
            if dyn.instruction.is_memory:
                assert dyn.mem_addr == trace.mem_addrs[row]
            else:
                assert dyn.mem_addr is None
            if dyn.is_control:
                assert dyn.taken is (trace.taken[row] == 1)
            else:
                assert dyn.taken is None

    def test_instruction_mix_matches_materialized_stream(self, columnar_trace):
        trace = columnar_trace
        expected = Counter(dyn.op_class for dyn in trace)
        assert trace.instruction_mix() == dict(expected)
        for op_class in OpClass:
            assert trace.count(op_class) == expected.get(op_class, 0)

    def test_filtered_iterators_match_materialized_stream(self, columnar_trace):
        trace = columnar_trace
        assert list(trace.memory_accesses()) == [
            dyn for dyn in trace if dyn.instruction.is_memory
        ]
        assert list(trace.branches()) == [dyn for dyn in trace if dyn.is_control]

    def test_legacy_roundtrip_preserves_the_stream(self, columnar_trace):
        # Rebuilding a trace from its facade records (the legacy list-based
        # constructor) must preserve every column and every record.
        trace = columnar_trace
        rebuilt = Trace(list(trace), name=trace.name)
        assert len(rebuilt) == len(trace)
        assert rebuilt.pcs == trace.pcs
        assert rebuilt.next_pcs == trace.next_pcs
        assert rebuilt.mem_addrs == trace.mem_addrs
        assert rebuilt.op_classes == trace.op_classes
        assert rebuilt.taken == trace.taken
        assert list(rebuilt.seqs) == list(trace.seqs)
        assert list(rebuilt) == list(trace)
        assert rebuilt.instruction_mix() == trace.instruction_mix()
