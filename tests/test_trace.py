"""Tests for the trace data structures."""

from repro.isa import Instruction, Opcode
from repro.isa.opcodes import OpClass
from repro.trace import Trace
from repro.trace.trace import DynamicInstruction


def _dyn(seq, opcode, **kwargs):
    instruction_kwargs = {}
    for key in ("dest", "src1", "src2", "imm", "target"):
        if key in kwargs:
            instruction_kwargs[key] = kwargs.pop(key)
    return DynamicInstruction(
        seq=seq,
        pc=seq * 4,
        instruction=Instruction(opcode, **instruction_kwargs),
        **kwargs,
    )


class TestDynamicInstruction:
    def test_property_passthrough(self):
        load = _dyn(0, Opcode.LW, dest=1, src1=2, mem_addr=0x100)
        assert load.is_load and not load.is_store
        assert load.op_class is OpClass.LOAD
        assert load.dest_regs() == (1,)
        assert load.src_regs() == (2,)

        branch = _dyn(1, Opcode.BNE, src1=1, src2=2, target="x", taken=True)
        assert branch.is_branch and branch.is_control
        mul = _dyn(2, Opcode.MUL, dest=3, src1=1, src2=2)
        assert mul.is_long_latency


class TestTrace:
    def _trace(self):
        return Trace(
            [
                _dyn(0, Opcode.LI, dest=1, imm=5),
                _dyn(1, Opcode.LW, dest=2, src1=1, mem_addr=0x40),
                _dyn(2, Opcode.MUL, dest=3, src1=2, src2=2),
                _dyn(3, Opcode.SW, src1=1, src2=3, mem_addr=0x44),
                _dyn(4, Opcode.BNE, src1=3, src2=0, target="x", taken=False),
                _dyn(5, Opcode.J, target="x", taken=True),
            ],
            name="synthetic",
        )

    def test_len_iter_getitem(self):
        trace = self._trace()
        assert len(trace) == 6
        assert trace[0].instruction.opcode is Opcode.LI
        assert len(list(iter(trace))) == 6
        assert trace.name == "synthetic"
        assert len(trace.instructions) == 6

    def test_count_and_mix(self):
        trace = self._trace()
        assert trace.count(OpClass.LOAD) == 1
        assert trace.count(OpClass.STORE) == 1
        mix = trace.instruction_mix()
        assert mix[OpClass.INT_MUL] == 1
        assert mix[OpClass.BRANCH] == 1
        assert mix[OpClass.JUMP] == 1
        assert sum(mix.values()) == 6

    def test_memory_and_branch_iterators(self):
        trace = self._trace()
        assert len(list(trace.memory_accesses())) == 2
        assert len(list(trace.branches())) == 2
