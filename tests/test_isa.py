"""Unit tests for the ISA layer: registers, opcodes, instructions, programs."""

import pytest

from repro.isa import (
    Instruction,
    NUM_INT_REGS,
    OpClass,
    Opcode,
    Program,
    ProgramBuilder,
    Register,
)
from repro.isa.opcodes import IMMEDIATE_OPCODES, OPCODE_CLASS, op_class
from repro.isa.program import ProgramError
from repro.isa.registers import R, ZERO_REG, reg


class TestRegisters:
    def test_register_range(self):
        assert Register(0) == 0
        assert Register(NUM_INT_REGS - 1) == NUM_INT_REGS - 1

    def test_register_out_of_range(self):
        with pytest.raises(ValueError):
            Register(NUM_INT_REGS)
        with pytest.raises(ValueError):
            Register(-1)

    def test_register_repr(self):
        assert repr(Register(7)) == "r7"

    def test_reg_helper_and_table(self):
        assert reg(5) == R[5] == 5
        assert len(R) == NUM_INT_REGS

    def test_zero_register_constant(self):
        assert ZERO_REG == 0


class TestOpcodes:
    def test_every_opcode_has_a_class(self):
        for opcode in Opcode:
            assert opcode in OPCODE_CLASS

    def test_op_class_lookup(self):
        assert op_class(Opcode.ADD) is OpClass.INT_ALU
        assert op_class(Opcode.MUL) is OpClass.INT_MUL
        assert op_class(Opcode.DIV) is OpClass.INT_DIV
        assert op_class(Opcode.LW) is OpClass.LOAD
        assert op_class(Opcode.SW) is OpClass.STORE
        assert op_class(Opcode.BEQ) is OpClass.BRANCH
        assert op_class(Opcode.J) is OpClass.JUMP

    def test_memory_and_control_properties(self):
        assert OpClass.LOAD.is_memory and OpClass.STORE.is_memory
        assert not OpClass.INT_ALU.is_memory
        assert OpClass.BRANCH.is_control and OpClass.JUMP.is_control
        assert not OpClass.LOAD.is_control

    def test_immediate_opcode_set(self):
        assert Opcode.ADDI in IMMEDIATE_OPCODES
        assert Opcode.ADD not in IMMEDIATE_OPCODES


class TestInstruction:
    def test_alu_operands(self):
        instruction = Instruction(Opcode.ADD, dest=3, src1=1, src2=2)
        assert instruction.dest_regs() == (3,)
        assert instruction.src_regs() == (1, 2)
        assert instruction.op_class is OpClass.INT_ALU
        assert not instruction.is_long_latency

    def test_zero_register_is_dropped(self):
        instruction = Instruction(Opcode.ADD, dest=0, src1=0, src2=5)
        assert instruction.dest_regs() == ()
        assert instruction.src_regs() == (5,)

    def test_store_has_no_dest(self):
        store = Instruction(Opcode.SW, src1=4, src2=7, imm=8)
        assert store.dest_regs() == ()
        assert set(store.src_regs()) == {4, 7}
        assert store.is_store and store.is_memory and not store.is_load

    def test_load_properties(self):
        load = Instruction(Opcode.LW, dest=2, src1=9, imm=4)
        assert load.is_load and load.is_memory
        assert load.dest_regs() == (2,)

    def test_branch_vs_jump(self):
        branch = Instruction(Opcode.BNE, src1=1, src2=2, target="loop")
        jump = Instruction(Opcode.J, target="exit")
        assert branch.is_branch and branch.is_control
        assert not jump.is_branch and jump.is_control

    def test_long_latency(self):
        assert Instruction(Opcode.MUL, dest=1, src1=2, src2=3).is_long_latency
        assert Instruction(Opcode.DIV, dest=1, src1=2, src2=3).is_long_latency
        assert not Instruction(Opcode.ADD, dest=1, src1=2, src2=3).is_long_latency

    def test_str_is_readable(self):
        text = str(Instruction(Opcode.ADDI, dest=1, src1=2, imm=5))
        assert "addi" in text and "r1" in text


class TestProgramBuilder:
    def test_build_simple_loop(self):
        b = ProgramBuilder("loop")
        b.li(1, 3)
        b.label("top")
        b.addi(1, 1, -1)
        b.bne(1, 0, "top")
        b.halt()
        program = b.build()
        assert len(program) == 4
        assert program.label_address("top") == 1
        assert program.name == "loop"

    def test_duplicate_label_rejected(self):
        b = ProgramBuilder()
        b.label("x")
        with pytest.raises(ProgramError):
            b.label("x")

    def test_unknown_branch_target_rejected(self):
        b = ProgramBuilder()
        b.bne(1, 2, "nowhere")
        with pytest.raises(ProgramError):
            b.build()

    def test_unique_label(self):
        b = ProgramBuilder()
        b.label("x")
        assert b.unique_label("x") == "x_1"
        assert b.unique_label("fresh") == "fresh"

    def test_immediate_helper_rejects_non_immediate(self):
        b = ProgramBuilder()
        with pytest.raises(ProgramError):
            b._alu_imm(Opcode.ADD, 1, 2, 3)

    def test_position_tracks_emitted_instructions(self):
        b = ProgramBuilder()
        assert b.position == 0
        b.nop()
        assert b.position == 1

    def test_all_builder_helpers_emit_expected_opcodes(self):
        b = ProgramBuilder()
        b.add(1, 2, 3)
        b.sub(1, 2, 3)
        b.and_(1, 2, 3)
        b.or_(1, 2, 3)
        b.xor(1, 2, 3)
        b.sll(1, 2, 3)
        b.srl(1, 2, 3)
        b.slt(1, 2, 3)
        b.mul(1, 2, 3)
        b.div(1, 2, 3)
        b.rem(1, 2, 3)
        b.addi(1, 2, 4)
        b.andi(1, 2, 4)
        b.ori(1, 2, 4)
        b.xori(1, 2, 4)
        b.slli(1, 2, 4)
        b.srli(1, 2, 4)
        b.slti(1, 2, 4)
        b.muli(1, 2, 4)
        b.divi(1, 2, 4)
        b.li(1, 9)
        b.mov(1, 2)
        b.lw(1, 2, 0)
        b.lb(1, 2, 0)
        b.sw(1, 2, 0)
        b.sb(1, 2, 0)
        b.label("t")
        b.beq(1, 2, "t")
        b.bne(1, 2, "t")
        b.blt(1, 2, "t")
        b.bge(1, 2, "t")
        b.j("t")
        b.jr(1)
        b.nop()
        b.halt()
        program = b.build()
        opcodes = [instruction.opcode for instruction in program]
        assert Opcode.ADD in opcodes and Opcode.HALT in opcodes
        assert len(program) == 34


class TestProgram:
    def _program(self) -> Program:
        b = ProgramBuilder("bb")
        b.li(1, 2)               # 0
        b.label("loop")          # -> 1
        b.addi(1, 1, -1)         # 1
        b.bne(1, 0, "loop")      # 2
        b.li(2, 7)               # 3
        b.halt()                 # 4
        return b.build()

    def test_basic_blocks(self):
        blocks = self._program().basic_blocks()
        # Leaders: 0 (entry), 1 (label), 3 (after branch).
        assert [(block.start, block.end) for block in blocks] == [(0, 1), (1, 3), (3, 5)]
        assert blocks[1].label == "loop"

    def test_basic_blocks_empty_program(self):
        assert Program().basic_blocks() == []

    def test_label_address_unknown(self):
        with pytest.raises(ProgramError):
            self._program().label_address("missing")

    def test_copy_is_independent(self):
        program = self._program()
        clone = program.copy()
        clone.instructions.append(Instruction(Opcode.NOP))
        assert len(clone) == len(program) + 1

    def test_validate_flags_missing_target(self):
        program = self._program()
        program.instructions[2] = Instruction(Opcode.BNE, src1=1, src2=0, target=None)
        with pytest.raises(ProgramError):
            program.validate()

    def test_iteration_and_indexing(self):
        program = self._program()
        assert program[0].opcode is Opcode.LI
        assert len(list(iter(program))) == len(program)
