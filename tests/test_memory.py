"""Unit and property tests for caches, TLBs, the hierarchy and single-pass profiling."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.memory import (
    AccessOutcome,
    Cache,
    CacheConfig,
    CacheHierarchy,
    MemoryHierarchyConfig,
    StackDistanceProfiler,
    TLB,
    TLBConfig,
)


class TestCacheConfig:
    def test_sets_computed(self):
        config = CacheConfig(32 * 1024, 4, 64)
        assert config.sets == 128
        assert "32KB" in config.describe()

    def test_invalid_geometry_rejected(self):
        with pytest.raises(ValueError):
            CacheConfig(1000, 4, 64)           # size not divisible
        with pytest.raises(ValueError):
            CacheConfig(32 * 1024, 0, 64)      # zero associativity
        with pytest.raises(ValueError):
            CacheConfig(32 * 1024, 4, 48)      # non power-of-two line
        with pytest.raises(ValueError):
            CacheConfig(3 * 2 * 64, 2, 64)     # three sets: not a power of two


class TestCache:
    def test_miss_then_hit(self):
        cache = Cache(CacheConfig(1024, 2, 64))
        assert cache.access(0) is False
        assert cache.access(0) is True
        assert cache.access(32) is True       # same line
        assert cache.stats.accesses == 3
        assert cache.stats.misses == 1
        assert cache.stats.hits == 2

    def test_lru_eviction(self):
        # 2-way, 64B lines, 2 sets -> set 0 holds lines 0 and 2 (addresses 0, 128).
        cache = Cache(CacheConfig(256, 2, 64))
        cache.access(0)        # line A
        cache.access(128)      # line B (same set)
        cache.access(0)        # touch A -> B is LRU
        cache.access(256)      # line C evicts B
        assert cache.probe(0) is True
        assert cache.probe(128) is False
        assert cache.probe(256) is True

    def test_reset(self):
        cache = Cache(CacheConfig(256, 2, 64))
        cache.access(0)
        cache.reset()
        assert cache.stats.accesses == 0
        assert cache.resident_lines() == 0

    def test_miss_rate(self):
        cache = Cache(CacheConfig(256, 2, 64))
        assert cache.stats.miss_rate == 0.0
        cache.access(0)
        cache.access(0)
        assert cache.stats.miss_rate == pytest.approx(0.5)

    @given(st.lists(st.integers(min_value=0, max_value=1 << 14), min_size=1, max_size=300))
    @settings(max_examples=40)
    def test_capacity_invariant(self, addresses):
        config = CacheConfig(1024, 2, 64)
        cache = Cache(config)
        for address in addresses:
            cache.access(address)
        assert cache.resident_lines() <= config.sets * config.associativity
        # Re-accessing the most recent address is always a hit.
        assert cache.access(addresses[-1]) is True


class TestTLB:
    def test_hit_after_miss(self):
        tlb = TLB(TLBConfig(entries=4, page_size=4096))
        assert tlb.access(0) is False
        assert tlb.access(100) is True          # same page
        assert tlb.access(4096) is False        # next page

    def test_lru_replacement(self):
        tlb = TLB(TLBConfig(entries=2, page_size=4096))
        tlb.access(0)
        tlb.access(4096)
        tlb.access(0)
        tlb.access(2 * 4096)                    # evicts page 1
        assert tlb.access(0) is True
        assert tlb.access(4096) is False

    def test_invalid_config(self):
        with pytest.raises(ValueError):
            TLBConfig(entries=0)
        with pytest.raises(ValueError):
            TLBConfig(page_size=3000)

    def test_reset(self):
        tlb = TLB(TLBConfig(entries=2))
        tlb.access(0)
        tlb.reset()
        assert tlb.stats.accesses == 0
        assert tlb.access(0) is False


class TestHierarchy:
    def _hierarchy(self) -> CacheHierarchy:
        config = MemoryHierarchyConfig(
            l1i=CacheConfig(1024, 2, 64, name="l1i"),
            l1d=CacheConfig(1024, 2, 64, name="l1d"),
            l2=CacheConfig(8 * 1024, 4, 64, name="l2"),
            l2_hit_cycles=10,
            memory_cycles=80,
            tlb_miss_cycles=30,
        )
        return CacheHierarchy(config)

    def test_instruction_access_outcomes(self):
        hierarchy = self._hierarchy()
        outcome, _ = hierarchy.access_instruction(0)
        assert outcome is AccessOutcome.MEMORY       # cold: misses everywhere
        outcome, _ = hierarchy.access_instruction(0)
        assert outcome is AccessOutcome.L1_HIT
        assert hierarchy.stats.l1i_misses == 1
        assert hierarchy.stats.il2_misses == 1

    def test_l2_hit_after_l1_eviction(self):
        hierarchy = self._hierarchy()
        # Fill one L1 set (2 ways, 16 sets of 64B lines -> same set every 1KB).
        hierarchy.access_data(0)
        hierarchy.access_data(1024)
        hierarchy.access_data(2048)      # evicts address 0 from L1, stays in L2
        outcome, _ = hierarchy.access_data(0)
        assert outcome is AccessOutcome.L2_HIT
        assert hierarchy.stats.l1d_l2_hits >= 1

    def test_latency_of(self):
        hierarchy = self._hierarchy()
        config = hierarchy.config
        assert hierarchy.latency_of(AccessOutcome.L1_HIT) == config.l1_hit_cycles
        assert hierarchy.latency_of(AccessOutcome.L2_HIT) == config.l1_hit_cycles + 10
        assert hierarchy.latency_of(AccessOutcome.MEMORY) == config.l1_hit_cycles + 10 + 80
        assert hierarchy.latency_of(AccessOutcome.L1_HIT, tlb_miss=True) == \
            config.l1_hit_cycles + 30

    def test_reset(self):
        hierarchy = self._hierarchy()
        hierarchy.access_data(0)
        hierarchy.reset()
        assert hierarchy.stats.data_accesses == 0
        outcome, _ = hierarchy.access_data(0)
        assert outcome is AccessOutcome.MEMORY

    def test_stats_properties(self):
        hierarchy = self._hierarchy()
        for address in range(0, 4096, 64):
            hierarchy.access_data(address)
        stats = hierarchy.stats
        assert stats.data_accesses == 64
        assert stats.l1d_misses >= stats.dl2_misses
        assert stats.l1d_l2_hits == stats.l1d_misses - stats.dl2_misses


class TestStackDistanceProfiler:
    def test_validation(self):
        with pytest.raises(ValueError):
            StackDistanceProfiler(sets=3)
        with pytest.raises(ValueError):
            StackDistanceProfiler(sets=4, line_size=100)

    def test_simple_stream(self):
        profiler = StackDistanceProfiler(sets=1, line_size=64)
        result = profiler.profile([0, 64, 0, 64, 128, 0])
        assert result.accesses == 6
        assert result.cold_misses == 3
        # With 1-line capacity everything but repeats at distance 0 misses.
        assert result.misses(1) == 6
        # With >= 3 lines only the cold misses remain.
        assert result.misses(3) == 3

    @given(
        st.lists(st.integers(min_value=0, max_value=1 << 13), min_size=1, max_size=400),
        st.sampled_from([1, 2, 4, 8]),
    )
    @settings(max_examples=30, deadline=None)
    def test_matches_direct_simulation(self, addresses, associativity):
        """Single-pass stack distances give the same miss count as an LRU cache."""
        sets, line = 4, 64
        profiler = StackDistanceProfiler(sets=sets, line_size=line)
        result = profiler.profile(addresses)
        cache = Cache(CacheConfig(sets * associativity * line, associativity, line))
        direct_misses = sum(0 if cache.access(address) else 1 for address in addresses)
        assert result.misses(associativity) == direct_misses

    def test_miss_rate(self):
        profiler = StackDistanceProfiler(sets=1, line_size=64)
        result = profiler.profile([0, 0, 0, 0])
        assert result.miss_rate(1) == pytest.approx(0.25)
        with pytest.raises(ValueError):
            result.misses(0)
