"""Tests for validation utilities (error metrics, CDF)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.validation import (
    ValidationRow,
    ValidationSummary,
    cumulative_distribution,
    relative_error,
    summarize,
)


class TestRelativeError:
    def test_signed(self):
        assert relative_error(1.1, 1.0) == pytest.approx(0.1)
        assert relative_error(0.9, 1.0) == pytest.approx(-0.1)

    def test_zero_reference_rejected(self):
        with pytest.raises(ValueError):
            relative_error(1.0, 0.0)


class TestValidationRow:
    def test_error_properties(self):
        row = ValidationRow("sha", "default", predicted_cpi=1.05, simulated_cpi=1.0)
        assert row.error == pytest.approx(0.05)
        assert row.absolute_error == pytest.approx(0.05)


class TestSummary:
    def _rows(self):
        return [
            ValidationRow("a", "c1", 1.02, 1.0),
            ValidationRow("b", "c1", 0.95, 1.0),
            ValidationRow("c", "c1", 1.10, 1.0),
        ]

    def test_statistics(self):
        summary = summarize(self._rows())
        assert summary.count == 3
        assert summary.average_absolute_error == pytest.approx((0.02 + 0.05 + 0.10) / 3)
        assert summary.maximum_absolute_error == pytest.approx(0.10)
        assert summary.fraction_below(0.06) == pytest.approx(2 / 3)
        assert summary.worst(1)[0].name == "c"

    def test_summarize_empty_is_a_clear_error(self):
        with pytest.raises(ValueError, match="zero validation rows"):
            summarize([])

    def test_empty_summary_is_well_defined(self):
        import math

        summary = ValidationSummary.empty()
        assert summary.count == 0
        for value in (summary.average_absolute_error,
                      summary.maximum_absolute_error,
                      summary.fraction_below(0.1)):
            assert value == 0.0
            assert not math.isnan(value)
        assert summary.worst() == []


class TestCDF:
    def test_simple_curve(self):
        curve = cumulative_distribution([0.01, 0.02, 0.03, 0.04], points=5)
        thresholds = [threshold for threshold, _ in curve]
        fractions = [fraction for _, fraction in curve]
        assert thresholds[0] == 0.0
        assert thresholds[-1] == pytest.approx(0.04)
        assert fractions[-1] == 1.0
        assert fractions == sorted(fractions)          # monotone non-decreasing

    def test_empty_and_degenerate(self):
        assert cumulative_distribution([]) == []
        assert cumulative_distribution([0.0, 0.0]) == [(0.0, 1.0)]
        with pytest.raises(ValueError):
            cumulative_distribution([0.1], points=1)

    @given(st.lists(st.floats(min_value=0.0, max_value=1.0), min_size=1, max_size=50))
    @settings(max_examples=40)
    def test_cdf_properties(self, values):
        curve = cumulative_distribution(values, points=11)
        fractions = [fraction for _, fraction in curve]
        assert fractions[-1] == pytest.approx(1.0)
        assert all(0.0 <= fraction <= 1.0 for fraction in fractions)
        assert fractions == sorted(fractions)
