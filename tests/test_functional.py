"""Unit tests for the functional simulator and memory image."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.isa import ProgramBuilder
from repro.trace import (
    FunctionalSimulator,
    MemoryImage,
    SimulationLimitError,
)
from repro.trace.trace import INSTR_BYTES


def run_program(builder: ProgramBuilder, memory: MemoryImage | None = None):
    simulator = FunctionalSimulator(builder.build(), memory=memory)
    trace = simulator.run()
    return simulator, trace


class TestMemoryImage:
    def test_word_roundtrip(self):
        memory = MemoryImage()
        memory.store_word(0x100, 1234)
        assert memory.load_word(0x100) == 1234
        assert memory.load_word(0x200) == 0

    def test_byte_access_within_word(self):
        memory = MemoryImage()
        memory.store_word(0x40, 0x11223344)
        assert memory.load_byte(0x40) == 0x44
        assert memory.load_byte(0x41) == 0x33
        memory.store_byte(0x41, 0xAB)
        assert memory.load_byte(0x41) == 0xAB
        assert memory.load_byte(0x40) == 0x44

    def test_write_and_read_array(self):
        memory = MemoryImage()
        end = memory.write_array(0x80, [1, 2, 3])
        assert end == 0x80 + 3 * MemoryImage.WORD_BYTES
        assert memory.read_array(0x80, 3) == [1, 2, 3]

    def test_copy_is_independent(self):
        memory = MemoryImage()
        memory.store_word(0, 5)
        clone = memory.copy()
        clone.store_word(0, 9)
        assert memory.load_word(0) == 5

    @given(
        address=st.integers(min_value=0, max_value=1 << 20).map(lambda a: a * 4),
        value=st.integers(min_value=-(1 << 31), max_value=(1 << 31) - 1),
    )
    @settings(max_examples=60)
    def test_word_roundtrip_property(self, address, value):
        memory = MemoryImage()
        memory.store_word(address, value)
        assert memory.load_word(address) == value

    @given(address=st.integers(min_value=0, max_value=1 << 16),
           value=st.integers(min_value=0, max_value=255))
    @settings(max_examples=60)
    def test_byte_roundtrip_property(self, address, value):
        memory = MemoryImage()
        memory.store_byte(address, value)
        assert memory.load_byte(address) == value


class TestArithmetic:
    def test_add_sub_logic(self):
        b = ProgramBuilder()
        b.li(1, 10)
        b.li(2, 3)
        b.add(3, 1, 2)
        b.sub(4, 1, 2)
        b.and_(5, 1, 2)
        b.or_(6, 1, 2)
        b.xor(7, 1, 2)
        b.halt()
        simulator, _ = run_program(b)
        assert simulator.registers[3] == 13
        assert simulator.registers[4] == 7
        assert simulator.registers[5] == 10 & 3
        assert simulator.registers[6] == 10 | 3
        assert simulator.registers[7] == 10 ^ 3

    def test_shifts_and_compare(self):
        b = ProgramBuilder()
        b.li(1, 5)
        b.slli(2, 1, 3)
        b.srli(3, 2, 1)
        b.slt(4, 1, 2)
        b.slti(5, 1, 2)
        b.halt()
        simulator, _ = run_program(b)
        assert simulator.registers[2] == 40
        assert simulator.registers[3] == 20
        assert simulator.registers[4] == 1
        assert simulator.registers[5] == 0

    def test_mul_div_rem(self):
        b = ProgramBuilder()
        b.li(1, 7)
        b.li(2, 3)
        b.mul(3, 1, 2)
        b.div(4, 1, 2)
        b.rem(5, 1, 2)
        b.muli(6, 1, -2)
        b.divi(7, 1, 2)
        b.halt()
        simulator, _ = run_program(b)
        assert simulator.registers[3] == 21
        assert simulator.registers[4] == 2
        assert simulator.registers[5] == 1
        assert simulator.registers[6] == -14
        assert simulator.registers[7] == 3

    def test_division_by_zero_yields_zero(self):
        b = ProgramBuilder()
        b.li(1, 7)
        b.div(2, 1, 0)
        b.rem(3, 1, 0)
        b.divi(4, 1, 0)
        b.halt()
        simulator, _ = run_program(b)
        assert simulator.registers[2] == 0
        assert simulator.registers[3] == 0
        assert simulator.registers[4] == 0

    def test_writes_to_r0_are_ignored(self):
        b = ProgramBuilder()
        b.li(0, 42)
        b.add(1, 0, 0)
        b.halt()
        simulator, _ = run_program(b)
        assert simulator.registers[0] == 0
        assert simulator.registers[1] == 0

    def test_mov_and_li(self):
        b = ProgramBuilder()
        b.li(1, -9)
        b.mov(2, 1)
        b.halt()
        simulator, _ = run_program(b)
        assert simulator.registers[2] == -9


class TestMemoryInstructions:
    def test_load_store_word(self):
        memory = MemoryImage()
        memory.store_word(0x100, 77)
        b = ProgramBuilder()
        b.li(1, 0x100)
        b.lw(2, 1, 0)
        b.addi(2, 2, 1)
        b.sw(2, 1, 4)
        b.halt()
        simulator, trace = run_program(b, memory)
        assert simulator.registers[2] == 78
        assert simulator.memory.load_word(0x104) == 78
        loads = [d for d in trace if d.is_load]
        stores = [d for d in trace if d.is_store]
        assert loads[0].mem_addr == 0x100
        assert stores[0].mem_addr == 0x104

    def test_load_store_byte(self):
        b = ProgramBuilder()
        b.li(1, 0x200)
        b.li(2, 0x1FF)
        b.sb(2, 1, 0)
        b.lb(3, 1, 0)
        b.halt()
        simulator, _ = run_program(b)
        assert simulator.registers[3] == 0xFF  # only the low byte is stored


class TestControlFlow:
    def test_loop_executes_expected_iterations(self):
        b = ProgramBuilder()
        b.li(1, 5)
        b.li(2, 0)
        b.label("top")
        b.addi(2, 2, 1)
        b.addi(1, 1, -1)
        b.bne(1, 0, "top")
        b.halt()
        simulator, trace = run_program(b)
        assert simulator.registers[2] == 5
        branches = [d for d in trace if d.is_branch]
        assert len(branches) == 5
        assert sum(1 for d in branches if d.taken) == 4

    def test_branch_variants(self):
        b = ProgramBuilder()
        b.li(1, 2)
        b.li(2, 3)
        b.blt(1, 2, "lt_taken")
        b.li(10, 111)           # skipped
        b.label("lt_taken")
        b.bge(2, 1, "ge_taken")
        b.li(11, 222)           # skipped
        b.label("ge_taken")
        b.beq(1, 1, "eq_taken")
        b.li(12, 333)           # skipped
        b.label("eq_taken")
        b.halt()
        simulator, _ = run_program(b)
        assert simulator.registers[10] == 0
        assert simulator.registers[11] == 0
        assert simulator.registers[12] == 0

    def test_jump_and_jr(self):
        b = ProgramBuilder()
        b.li(1, 5 * INSTR_BYTES)   # address of the label "end"
        b.j("skip")
        b.li(9, 1)                 # never executed
        b.label("skip")
        b.jr(1)
        b.li(9, 2)                 # never executed
        b.label("end")
        b.halt()
        simulator, trace = run_program(b)
        assert simulator.registers[9] == 0
        jumps = [d for d in trace if d.is_control]
        assert all(d.taken for d in jumps)

    def test_next_pc_recorded(self):
        b = ProgramBuilder()
        b.li(1, 1)
        b.beq(1, 1, "target")
        b.nop()
        b.label("target")
        b.halt()
        _, trace = run_program(b)
        branch = next(d for d in trace if d.is_branch)
        assert branch.taken is True
        assert branch.next_pc == 3 * INSTR_BYTES

    def test_simulation_limit(self):
        b = ProgramBuilder()
        b.label("forever")
        b.j("forever")
        simulator = FunctionalSimulator(b.build(), max_instructions=100)
        with pytest.raises(SimulationLimitError):
            simulator.run()

    def test_halt_ends_trace(self):
        b = ProgramBuilder()
        b.li(1, 1)
        b.halt()
        b.li(2, 2)   # unreachable
        simulator, trace = run_program(b)
        assert simulator.registers[2] == 0
        assert len(trace) == 2
