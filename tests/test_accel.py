"""Parity and behaviour tests for the :mod:`repro.accel` kernel layer.

The contract under test is *bit identity*: whatever the NumPy backend
computes — stack-distance passes, L2 passes, branch replays, dependency
profiles, batched model evaluations — must equal the pure-Python
reference exactly, across the full workload set, randomized synthetic
traces, off-space geometries and every registered branch predictor.

NumPy-specific tests skip cleanly on stdlib-only interpreters (the CI
matrix keeps one leg without NumPy).
"""

from __future__ import annotations

import dataclasses
import random

import pytest

import repro.accel as accel
from repro.accel import BaseGeometry, PythonKernels, count_miss_runs
from repro.accel.passes import L2Pass
from repro.branch.predictors import PREDICTORS, make_predictor
from repro.branch.profiler import profile_control_stream
from repro.dse.space import reduced_design_space
from repro.machine import MachineConfig
from repro.memory.single_pass import StackDistanceProfiler, suffix_counts
from repro.profiler.dependences import MAX_DISTANCE, collect_dependencies
from repro.profiler.single_pass_engine import SinglePassEngine
from repro.workloads import get_workload
from repro.workloads.registry import MIBENCH_BUILDERS
from repro.workloads.synthetic import (
    SyntheticWorkloadSpec,
    generate_synthetic_trace,
)

numpy_kernels = pytest.importorskip(
    "repro.accel.np_kernels", reason="NumPy backend not installed"
)
NumpyKernels = numpy_kernels.NumpyKernels


@pytest.fixture(autouse=True)
def _restore_backend():
    """Tests switch backends freely; put the auto-selected one back."""
    yield
    accel.set_backend("auto")


def _counts(profile) -> dict[str, int]:
    return {
        field.name: getattr(profile, field.name)
        for field in dataclasses.fields(profile)
        if field.name != "machine"
    }


#: Off-space configurations exercising geometry dimensions Table 2 fixes.
OFF_SPACE_CONFIGS = (
    MachineConfig(name="tiny_l1", l1i_size=8 * 1024, l1i_associativity=2,
                  l1d_size=8 * 1024, l1d_associativity=2),
    MachineConfig(name="narrow_lines", line_size=32, l2_size=256 * 1024),
    MachineConfig(name="tiny_tlb", tlb_entries=4, page_size=1024),
    MachineConfig(name="direct_mapped", l1i_associativity=1,
                  l1d_associativity=1, l2_associativity=1,
                  branch_predictor="bimodal"),
)


# ----------------------------------------------------------------------
# Engine-level parity: all 19 MiBench workloads x the Figure-5 space.
# ----------------------------------------------------------------------
@pytest.mark.parametrize("name", sorted(MIBENCH_BUILDERS))
def test_numpy_matches_python_across_figure5_space(name):
    trace = get_workload(name).trace()
    python_engine = SinglePassEngine(trace, PythonKernels())
    numpy_engine = SinglePassEngine(trace, NumpyKernels())
    for machine in reduced_design_space().configurations():
        assert _counts(numpy_engine.miss_profile(machine)) == _counts(
            python_engine.miss_profile(machine)
        ), f"{name}: numpy kernels diverge from python on {machine.name}"


@pytest.mark.parametrize("machine", OFF_SPACE_CONFIGS, ids=lambda m: m.name)
def test_numpy_matches_python_off_space(machine):
    trace = get_workload("dijkstra").trace()
    python_engine = SinglePassEngine(trace, PythonKernels())
    numpy_engine = SinglePassEngine(trace, NumpyKernels())
    assert _counts(numpy_engine.miss_profile(machine)) == _counts(
        python_engine.miss_profile(machine)
    )


def test_pass_payloads_are_bit_identical():
    """Not only the answers: the cached pass payloads themselves match,
    so engine state persisted by one backend answers for the other."""
    trace = get_workload("sha").trace()
    geometry = BaseGeometry(32 * 1024, 4, 32 * 1024, 4, 64, 4096)
    python_pass = PythonKernels().base_pass(trace, geometry)
    numpy_pass = NumpyKernels().base_pass(trace, geometry)
    for side in ("l1i", "l1d", "itlb", "dtlb"):
        assert getattr(python_pass, side) == getattr(numpy_pass, side)
    assert python_pass.l2_addrs == numpy_pass.l2_addrs
    assert python_pass.l2_sides == numpy_pass.l2_sides
    assert python_pass.l2_seqs == numpy_pass.l2_seqs
    python_l2 = PythonKernels().l2_pass(python_pass, 1024, 64)
    numpy_l2 = NumpyKernels().l2_pass(numpy_pass, 1024, 64)
    assert python_l2.instruction_histogram == numpy_l2.instruction_histogram
    assert python_l2.data_histogram == numpy_l2.data_histogram
    assert python_l2.data_seqs == numpy_l2.data_seqs
    assert python_l2.data_distances == numpy_l2.data_distances
    assert (python_l2.instruction_cold, python_l2.data_cold) == (
        numpy_l2.instruction_cold, numpy_l2.data_cold
    )


# ----------------------------------------------------------------------
# Randomized property tests.
# ----------------------------------------------------------------------
def _random_spec(rng: random.Random, index: int) -> SyntheticWorkloadSpec:
    return SyntheticWorkloadSpec(
        name=f"accel_prop_{index}",
        instructions=rng.randrange(200, 3000),
        load_fraction=rng.uniform(0.05, 0.3),
        store_fraction=rng.uniform(0.02, 0.15),
        multiply_fraction=rng.uniform(0.0, 0.05),
        divide_fraction=rng.uniform(0.0, 0.01),
        branch_fraction=rng.uniform(0.05, 0.3),
        branch_taken_rate=rng.uniform(0.2, 0.9),
        branch_predictability=rng.uniform(0.0, 1.0),
        static_code_size=rng.randrange(50, 500),
        data_footprint_bytes=rng.choice([4 * 1024, 64 * 1024, 1024 * 1024]),
        seed=rng.randrange(1 << 30),
    )


def _random_machines(rng: random.Random) -> list[MachineConfig]:
    machines = []
    for predictor in PREDICTORS.names():
        machines.append(MachineConfig(
            l1i_size=rng.choice([4, 8, 32]) * 1024,
            l1i_associativity=rng.choice([1, 2, 4]),
            l1d_size=rng.choice([4, 8, 32]) * 1024,
            l1d_associativity=rng.choice([1, 2, 4]),
            l2_size=rng.choice([64, 128, 512]) * 1024,
            l2_associativity=rng.choice([1, 4, 8, 16]),
            line_size=rng.choice([16, 32, 64]),
            page_size=rng.choice([1024, 4096]),
            tlb_entries=rng.choice([2, 8, 32]),
            branch_predictor=predictor,
            name=f"random_{predictor}",
        ))
    return machines


def test_randomized_traces_match_across_backends_and_predictors():
    """Synthetic traces x off-space geometries x every registered predictor:
    the two backends agree bit for bit on every miss profile."""
    rng = random.Random(0xACCE1)
    for index in range(4):
        trace = generate_synthetic_trace(_random_spec(rng, index))
        python_engine = SinglePassEngine(trace, PythonKernels())
        numpy_engine = SinglePassEngine(trace, NumpyKernels())
        for machine in _random_machines(rng):
            window = rng.choice([1, 16, 64, 256])
            assert _counts(
                numpy_engine.miss_profile(machine, window)
            ) == _counts(python_engine.miss_profile(machine, window)), (
                f"trace {index} diverges on {machine.name} (window {window})"
            )


def test_randomized_branch_replay_matches_every_predictor():
    rng = random.Random(0xB4A2C)
    python_kernels, np_kernels = PythonKernels(), NumpyKernels()
    for index in range(3):
        trace = generate_synthetic_trace(_random_spec(rng, 100 + index))
        controls = python_kernels.control_stream(trace)
        assert np_kernels.control_stream(trace) == controls
        for spec in PREDICTORS.names():
            reference = profile_control_stream(
                ((pc, taken == 1, conditional == 1)
                 for pc, taken, conditional in zip(*controls)),
                make_predictor(spec),
            )
            accelerated = np_kernels.branch_profile(controls, spec)
            assert accelerated == reference, (index, spec)


def test_randomized_dependency_profiles_match():
    rng = random.Random(0xDE9)
    np_kernels = NumpyKernels()
    accel.set_backend("python")  # reference walk must not self-dispatch
    for index in range(4):
        trace = generate_synthetic_trace(_random_spec(rng, 200 + index))
        assert np_kernels.dependency_profile(trace, MAX_DISTANCE) == \
            collect_dependencies(trace), index


def test_random_address_streams_match_reference_profiler():
    rng = random.Random(1234)
    for trial in range(40):
        sets = rng.choice([1, 2, 16, 128])
        line = rng.choice([16, 64, 4096])
        addresses = [
            rng.randint(-500, 5000) * rng.choice([1, 7, 64, 100000])
            for _ in range(rng.randrange(0, 400))
        ]
        reference = StackDistanceProfiler(sets, line)
        expected = [reference.access(address) for address in addresses]
        np = numpy_kernels.np
        lines = np.array(addresses, dtype=np.int64) >> (line.bit_length() - 1)
        if sets == 1:
            got = numpy_kernels._stack_distances(lines, lines,
                                                 single_set=True)
        else:
            got = numpy_kernels._stack_distances(lines, lines & (sets - 1))
        assert got.tolist() == expected, (trial, sets, line)


def test_unknown_predictor_falls_back_to_reference_replay():
    trace = get_workload("sha").trace()
    controls = NumpyKernels().control_stream(trace)
    assert NumpyKernels().branch_profile(controls, "no_such_scheme") is None
    engine = SinglePassEngine(trace, NumpyKernels())
    with pytest.raises(ValueError):
        engine.branch_profile("no_such_scheme")


# ----------------------------------------------------------------------
# Suffix sums and miss-run caching.
# ----------------------------------------------------------------------
def test_suffix_counts_match_direct_summation():
    rng = random.Random(7)
    for _ in range(50):
        histogram = {rng.randrange(0, 200): rng.randrange(1, 50)
                     for _ in range(rng.randrange(0, 30))}
        suffix = suffix_counts(histogram)
        for associativity in list(range(1, 210)) + [1000]:
            direct = sum(count for distance, count in histogram.items()
                         if distance >= associativity)
            got = (suffix[associativity] if associativity < len(suffix)
                   else 0)
            assert got == direct, (histogram, associativity)


def test_single_pass_result_misses_O1_after_unpickling():
    import pickle

    profiler = StackDistanceProfiler(4, 64)
    for address in (0, 64, 128, 0, 4096, 64, 8192, 0):
        profiler.access(address)
    result = profiler.result()
    clone = pickle.loads(pickle.dumps(result))
    for associativity in (1, 2, 4, 8, 64):
        assert clone.misses(associativity) == result.misses(associativity)


def test_l2_pass_memoizes_miss_runs():
    from array import array

    calls = []

    def counting(seqs, distances, associativity, window):
        calls.append((associativity, window))
        return count_miss_runs(seqs, distances, associativity, window)

    l2 = L2Pass(
        instruction_cold=0, data_cold=2,
        instruction_histogram={}, data_histogram={0: 1, 9: 1},
        data_seqs=array("q", [3, 10, 200, 210]),
        data_distances=array("q", [-1, 0, 9, -1]),
    )
    first = l2.data_miss_runs(8, 64, counting)
    again = l2.data_miss_runs(8, 64, counting)
    assert first == again
    assert calls == [(8, 64)]  # second query answered from the memo
    l2.data_miss_runs(1, 64, counting)  # new key -> one new computation
    assert len(calls) == 2


def test_count_miss_runs_reference_semantics():
    from array import array

    seqs = array("q", [0, 10, 100, 101, 400])
    distances = array("q", [-1, 3, 9, -1, 2])
    # associativity 8: misses at seq 0 (cold), 100 (>=8) and 101 (cold);
    # 400 is a hit (distance 2).  Window 64 groups 100/101 with each other
    # but not with 0 -> two runs.
    assert count_miss_runs(seqs, distances, 8, 64) == 2
    assert NumpyKernels().count_runs(seqs, distances, 8, 64) == 2
    # A window of 200 merges everything into one run.
    assert count_miss_runs(seqs, distances, 8, 200) == 1
    assert NumpyKernels().count_runs(seqs, distances, 8, 200) == 1


# ----------------------------------------------------------------------
# Backend selection.
# ----------------------------------------------------------------------
def test_env_variable_selects_backend(monkeypatch):
    monkeypatch.setenv(accel.ACCEL_ENV, "python")
    monkeypatch.setattr(accel, "_ACTIVE", None)
    assert accel.active_backend() == "python"


def test_set_backend_rejects_unknown_names():
    with pytest.raises(ValueError, match="unknown accel backend"):
        accel.set_backend("fortran")


def test_auto_falls_back_silently_when_numpy_missing(monkeypatch):
    def unavailable():
        raise ImportError("no numpy here")

    monkeypatch.setattr(accel, "_numpy_kernels", unavailable)
    assert accel.set_backend("auto").name == "python"
    with pytest.raises(ValueError, match="requested but unusable"):
        accel.set_backend("numpy")


def test_available_backends_reports_python_always():
    availability = accel.available_backends()
    assert availability["python"] is True
    assert "numpy" in availability


# ----------------------------------------------------------------------
# CLI and service surfaces.
# ----------------------------------------------------------------------
def test_cli_backends_lists_kernel_backends(capsys):
    from repro.cli import main as cli_main

    assert cli_main(["eval", "--backends"]) == 0
    out = capsys.readouterr().out
    assert "kernel backend" in out
    assert "python" in out and "numpy" in out


def test_cli_accel_flag_selects_backend_and_env(capsys, monkeypatch):
    import os

    from repro.cli import main as cli_main

    monkeypatch.delenv(accel.ACCEL_ENV, raising=False)
    assert cli_main(["eval", "--backends", "--accel", "python"]) == 0
    assert accel.active_backend() == "python"
    assert os.environ[accel.ACCEL_ENV] == "python"


def test_cli_accel_flag_rejects_unknown(capsys):
    from repro.cli import main as cli_main

    with pytest.raises(SystemExit):
        cli_main(["eval", "--backends", "--accel", "cuda"])


def test_service_metrics_publish_accel_backend(tmp_path):
    from repro.service.client import ServiceClient
    from repro.service.server import ServerThread, ServiceConfig

    with ServerThread(ServiceConfig(port=0, jobs=1,
                                    cache_dir=str(tmp_path))) as running:
        client = ServiceClient(port=running.port)
        metrics = client.metrics()
    assert metrics["accel_backend"] == accel.active_backend()
    assert metrics["accel_backend"] in ("numpy", "python")
