"""Unit tests for the machine configuration."""

import pytest

from repro.isa.opcodes import OpClass
from repro.machine import (
    BACKEND_STAGES,
    DEFAULT_MACHINE,
    MACHINE_PRESETS,
    MachineConfig,
    format_size,
    machine_from_spec,
    parse_size,
)


class TestMachineConfig:
    def test_default_matches_paper_table2(self):
        machine = DEFAULT_MACHINE
        assert machine.width == 4
        assert machine.pipeline_stages == 9
        assert machine.frequency_mhz == 1000
        assert machine.l1i_size == 32 * 1024
        assert machine.l2_size == 512 * 1024
        assert machine.l2_associativity == 8
        assert machine.branch_predictor == "global_1kb"

    def test_frontend_depth(self):
        assert MachineConfig(pipeline_stages=5).frontend_depth == 2
        assert MachineConfig(pipeline_stages=7).frontend_depth == 4
        assert MachineConfig(pipeline_stages=9).frontend_depth == 6

    def test_latency_conversion_to_cycles(self):
        machine = MachineConfig(frequency_mhz=1000, l2_ns=10.0, memory_ns=80.0)
        assert machine.cycle_ns == pytest.approx(1.0)
        assert machine.l2_hit_cycles == 10
        assert machine.memory_cycles == 80
        slower = machine.with_(frequency_mhz=600)
        # At 600 MHz the same 10 ns L2 is only 6 cycles away.
        assert slower.l2_hit_cycles == 6
        assert slower.memory_cycles == 48

    def test_execute_latency(self):
        machine = MachineConfig(mul_latency=4, div_latency=20)
        assert machine.execute_latency(OpClass.INT_MUL) == 4
        assert machine.execute_latency(OpClass.INT_DIV) == 20
        assert machine.execute_latency(OpClass.INT_ALU) == 1
        assert machine.execute_latency(OpClass.LOAD) == 1

    def test_memory_hierarchy_config(self):
        machine = MachineConfig()
        hierarchy = machine.memory_hierarchy_config()
        assert hierarchy.l1i.size == machine.l1i_size
        assert hierarchy.l2.associativity == machine.l2_associativity
        assert hierarchy.l2_hit_cycles == machine.l2_hit_cycles
        assert hierarchy.memory_cycles == machine.memory_cycles

    def test_with_override(self):
        machine = MachineConfig().with_(width=2, name="narrow")
        assert machine.width == 2
        assert machine.name == "narrow"
        # Original is unchanged (frozen dataclass semantics).
        assert MachineConfig().width == 4

    def test_describe_mentions_key_parameters(self):
        text = MachineConfig().describe()
        assert "4-wide" in text and "9-stage" in text and "512KB" in text

    def test_validation(self):
        with pytest.raises(ValueError):
            MachineConfig(width=0)
        with pytest.raises(ValueError):
            MachineConfig(pipeline_stages=4)
        with pytest.raises(ValueError):
            MachineConfig(frequency_mhz=0)
        with pytest.raises(ValueError):
            MachineConfig(mul_latency=0)

    def test_backend_stages_constant(self):
        assert BACKEND_STAGES == 3

    def test_minimum_latency_is_one_cycle(self):
        # Even a very fast clock cannot make the L2 round-trip free.
        machine = MachineConfig(frequency_mhz=1000, l2_ns=0.1)
        assert machine.l2_hit_cycles == 1

    def test_name_is_a_label_not_an_identity(self):
        # Regression: the name used to participate in equality/hashing, so
        # two identical geometries with different labels were profiled
        # twice (distinct session memo and artifact-cache keys).
        a = MachineConfig(name="baseline")
        b = MachineConfig(name="same-geometry-different-label")
        assert a == b
        assert hash(a) == hash(b)
        assert len({a: 1, b: 2}) == 1
        # A genuine geometry change still separates them.
        assert a != a.with_(l2_size=1024 * 1024)


class TestParseSize:
    @pytest.mark.parametrize("text,expected", [
        (65536, 65536),
        ("64", 64),
        ("64B", 64),
        ("32k", 32 * 1024),
        ("32KB", 32 * 1024),
        ("32KiB", 32 * 1024),
        ("1MB", 1024 * 1024),
        ("0.5MB", 512 * 1024),
        ("1mb", 1024 * 1024),
        ("2GB", 2 * 1024 ** 3),
        (" 128 KB ", 128 * 1024),
    ])
    def test_accepted_forms(self, text, expected):
        assert parse_size(text) == expected

    def test_rejects_garbage(self):
        with pytest.raises(ValueError, match="malformed size"):
            parse_size("lots")
        with pytest.raises(ValueError, match="unknown size unit"):
            parse_size("3 furlongs")
        with pytest.raises(ValueError, match="whole number"):
            parse_size("0.3KB")
        with pytest.raises(TypeError):
            parse_size(1.5)
        with pytest.raises(TypeError):
            parse_size(True)


class TestFormatSize:
    @pytest.mark.parametrize("value,expected", [
        (0, "0B"),
        (1, "1B"),
        (512, "512B"),
        (1023, "1023B"),
        (1024, "1KB"),
        (1536, "1536B"),       # not a whole KB: falls back to bytes
        (32 * 1024, "32KB"),
        (512 * 1024, "512KB"),
        (1024 * 1024, "1MB"),
        (3 * 1024 ** 2 // 2, "1536KB"),
        (2 * 1024 ** 3, "2GB"),
    ])
    def test_rendered_forms(self, value, expected):
        assert format_size(value) == expected

    @pytest.mark.parametrize("value", [
        0, 1, 63, 64, 1023, 1024, 1536, 4096, 32 * 1024, 512 * 1024,
        1024 * 1024 - 1, 1024 * 1024, 7 * 1024 ** 2, 1024 ** 3,
        5 * 1024 ** 3, 123456789,
    ])
    def test_round_trips_through_parse_size(self, value):
        assert parse_size(format_size(value)) == value

    def test_preset_sizes_round_trip(self):
        for name in MACHINE_PRESETS.names():
            machine = machine_from_spec(name)
            for size in (machine.l1i_size, machine.l1d_size, machine.l2_size,
                         machine.line_size, machine.page_size):
                assert parse_size(format_size(size)) == size

    def test_describe_uses_size_strings(self):
        assert "L2 512KB" in DEFAULT_MACHINE.describe()
        assert "L2 1MB" in DEFAULT_MACHINE.with_(l2_size=1024 ** 2).describe()

    def test_rejects_non_int_and_negative(self):
        with pytest.raises(TypeError):
            format_size("1MB")
        with pytest.raises(TypeError):
            format_size(True)
        with pytest.raises(ValueError):
            format_size(-1)


class TestMachineSpecs:
    def test_preset_registry_contains_paper_default(self):
        assert "paper_default" in MACHINE_PRESETS
        assert machine_from_spec("paper_default") == DEFAULT_MACHINE
        # The alias resolves to the same configuration.
        assert machine_from_spec("default") == DEFAULT_MACHINE

    def test_every_preset_resolves(self):
        for name in MACHINE_PRESETS.names():
            machine = machine_from_spec(name)
            assert isinstance(machine, MachineConfig)

    def test_overrides_with_size_strings(self):
        machine = machine_from_spec({
            "preset": "paper_default",
            "l2_size": "1MB",
            "branch_predictor": "hybrid_3.5kb",
        })
        assert machine.l2_size == 1024 * 1024
        assert machine.branch_predictor == "hybrid_3.5kb"
        assert machine.width == DEFAULT_MACHINE.width

    def test_machineconfig_passes_through(self):
        machine = MachineConfig(width=2)
        assert machine_from_spec(machine) is machine

    def test_unknown_preset_lists_known(self):
        with pytest.raises(KeyError, match="paper_default"):
            machine_from_spec("warp_drive")

    def test_unknown_parameter_is_a_clear_error(self):
        with pytest.raises(ValueError, match="unknown machine parameters"):
            machine_from_spec({"l2_sise": "1MB"})
