"""Unit tests for the machine configuration."""

import pytest

from repro.isa.opcodes import OpClass
from repro.machine import BACKEND_STAGES, DEFAULT_MACHINE, MachineConfig


class TestMachineConfig:
    def test_default_matches_paper_table2(self):
        machine = DEFAULT_MACHINE
        assert machine.width == 4
        assert machine.pipeline_stages == 9
        assert machine.frequency_mhz == 1000
        assert machine.l1i_size == 32 * 1024
        assert machine.l2_size == 512 * 1024
        assert machine.l2_associativity == 8
        assert machine.branch_predictor == "global_1kb"

    def test_frontend_depth(self):
        assert MachineConfig(pipeline_stages=5).frontend_depth == 2
        assert MachineConfig(pipeline_stages=7).frontend_depth == 4
        assert MachineConfig(pipeline_stages=9).frontend_depth == 6

    def test_latency_conversion_to_cycles(self):
        machine = MachineConfig(frequency_mhz=1000, l2_ns=10.0, memory_ns=80.0)
        assert machine.cycle_ns == pytest.approx(1.0)
        assert machine.l2_hit_cycles == 10
        assert machine.memory_cycles == 80
        slower = machine.with_(frequency_mhz=600)
        # At 600 MHz the same 10 ns L2 is only 6 cycles away.
        assert slower.l2_hit_cycles == 6
        assert slower.memory_cycles == 48

    def test_execute_latency(self):
        machine = MachineConfig(mul_latency=4, div_latency=20)
        assert machine.execute_latency(OpClass.INT_MUL) == 4
        assert machine.execute_latency(OpClass.INT_DIV) == 20
        assert machine.execute_latency(OpClass.INT_ALU) == 1
        assert machine.execute_latency(OpClass.LOAD) == 1

    def test_memory_hierarchy_config(self):
        machine = MachineConfig()
        hierarchy = machine.memory_hierarchy_config()
        assert hierarchy.l1i.size == machine.l1i_size
        assert hierarchy.l2.associativity == machine.l2_associativity
        assert hierarchy.l2_hit_cycles == machine.l2_hit_cycles
        assert hierarchy.memory_cycles == machine.memory_cycles

    def test_with_override(self):
        machine = MachineConfig().with_(width=2, name="narrow")
        assert machine.width == 2
        assert machine.name == "narrow"
        # Original is unchanged (frozen dataclass semantics).
        assert MachineConfig().width == 4

    def test_describe_mentions_key_parameters(self):
        text = MachineConfig().describe()
        assert "4-wide" in text and "9-stage" in text and "512KB" in text

    def test_validation(self):
        with pytest.raises(ValueError):
            MachineConfig(width=0)
        with pytest.raises(ValueError):
            MachineConfig(pipeline_stages=4)
        with pytest.raises(ValueError):
            MachineConfig(frequency_mhz=0)
        with pytest.raises(ValueError):
            MachineConfig(mul_latency=0)

    def test_backend_stages_constant(self):
        assert BACKEND_STAGES == 3

    def test_minimum_latency_is_one_cycle(self):
        # Even a very fast clock cannot make the L2 round-trip free.
        machine = MachineConfig(frequency_mhz=1000, l2_ns=0.1)
        assert machine.l2_hit_cycles == 1
