"""Fault injection, containment, self-healing caches, client retries, chaos.

The acceptance-criteria check lives in :class:`TestChaosInvariants`: a
seeded fault plan injecting worker kills, artifact-cache corruption and
slowed reads into a served full-suite sweep (19 workloads x 4 presets)
must yield (a) no server hang, (b) every non-quarantined result
byte-identical to the fault-free run, (c) quarantined items as
structured per-item errors, and (d) serial degradation after the
circuit breaker trips — on both accelerator backends.
"""

from __future__ import annotations

import asyncio
import pickle
import random
import time
from concurrent.futures import BrokenExecutor

import pytest

from repro import accel
from repro.resilience import faults
from repro.resilience.chaos import run_chaos
from repro.resilience.containment import (
    PoolCrashError,
    PoolHealth,
    RetryPolicy,
    UnitFailure,
    resilient_map,
    unit_label,
)
from repro.resilience.faults import (
    FAULTS_ENV,
    FaultPlan,
    FaultSpec,
    InjectedFault,
)
from repro.resilience.ratelimit import RateLimiter, TokenBucket
from repro.runtime.artifacts import MISSING, ArtifactCache
from repro.service.cache import EVICTION_REASONS, ResultCache
from repro.service.client import (
    ServiceClient,
    ServiceError,
    ServiceTimeout,
    ServiceUnavailable,
)


@pytest.fixture(autouse=True)
def _no_leaked_plan(monkeypatch):
    """Every test starts and ends without an installed fault plan."""
    monkeypatch.delenv(FAULTS_ENV, raising=False)
    faults.clear()
    yield
    faults.clear()


# ----------------------------------------------------------------------
# Fault specs and plans.
# ----------------------------------------------------------------------
class TestFaultSpec:
    def test_unknown_point_rejected(self):
        with pytest.raises(ValueError, match="unknown injection point"):
            FaultSpec(point="disk.write")

    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError, match="unknown fault mode"):
            FaultSpec(point="worker.entry", mode="explode")

    def test_dict_round_trip(self):
        spec = FaultSpec(point="cache.read", mode="delay", match="sha",
                         after=2, count=3, delay_s=0.01)
        assert FaultSpec.from_dict(spec.to_dict()) == spec

    def test_unknown_keys_rejected(self):
        with pytest.raises(ValueError, match="unknown fault-spec keys"):
            FaultSpec.from_dict({"point": "worker.entry", "mean_time": 3})


class TestFaultPlan:
    def test_json_round_trip(self, tmp_path):
        plan = FaultPlan(specs=(
            FaultSpec(point="worker.entry", mode="kill", match="sha"),
            FaultSpec(point="cache.write", mode="corrupt", count=2),
        ), seed=7, state_dir=str(tmp_path / "state"))
        again = FaultPlan.from_json(plan.to_json())
        assert again.to_dict() == plan.to_dict()
        assert again.seed == 7

    def test_after_count_window(self):
        plan = FaultPlan(specs=(
            FaultSpec(point="jobs.admit", after=1, count=2),
        ))
        faults.install(plan)
        faults.fire("jobs.admit")  # hit 0: skipped by after=1
        with pytest.raises(InjectedFault):
            faults.fire("jobs.admit")  # hit 1: fires
        with pytest.raises(InjectedFault):
            faults.fire("jobs.admit")  # hit 2: fires
        faults.fire("jobs.admit")  # hit 3: window exhausted
        rule = plan.report()["rules"][0]
        assert (rule["hits"], rule["fires"]) == (4, 2)

    def test_match_restricts_to_key_substring(self):
        faults.install(FaultPlan(specs=(
            FaultSpec(point="worker.entry", match="sha", count=-1),
        )))
        faults.fire("worker.entry", key="qsort")  # no match: silent
        with pytest.raises(InjectedFault) as info:
            faults.fire("worker.entry", key="sha")
        assert info.value.point == "worker.entry"
        assert info.value.key == "sha"

    def test_state_dir_shares_the_window_across_plan_copies(self, tmp_path):
        payload = FaultPlan(specs=(
            FaultSpec(point="jobs.admit", count=1),
        ), state_dir=str(tmp_path)).to_dict()
        first = FaultPlan.from_dict(payload)
        second = FaultPlan.from_dict(payload)  # a worker's own copy
        faults.install(first)
        with pytest.raises(InjectedFault):
            faults.fire("jobs.admit")
        faults.install(second)
        faults.fire("jobs.admit")  # the single fleet-wide fire is spent
        assert second.report()["rules"][0]["fires"] == 1

    def test_delay_mode_sleeps(self):
        faults.install(FaultPlan(specs=(
            FaultSpec(point="http.read", mode="delay", delay_s=0.02),
        )))
        started = time.perf_counter()
        faults.fire("http.read")
        assert time.perf_counter() - started >= 0.015

    def test_async_fire_error_and_delay(self):
        faults.install(FaultPlan(specs=(
            FaultSpec(point="http.accept", mode="delay", delay_s=0.0),
            FaultSpec(point="http.write", mode="error"),
        )))

        async def scenario():
            await faults.async_fire("http.accept")  # delay: awaits, no raise
            with pytest.raises(InjectedFault):
                await faults.async_fire("http.write")

        asyncio.run(scenario())

    def test_no_plan_is_a_no_op(self):
        faults.fire("worker.entry", key="anything")
        assert faults.corrupt_bytes("cache.read", b"data") == b"data"

    def test_worker_config_round_trip(self):
        faults.install(FaultPlan(specs=(
            FaultSpec(point="worker.entry", mode="kill"),
        ), seed=3))
        config = faults.worker_config()
        faults.clear()
        faults.apply_worker_config(config)
        plan = faults.active_plan()
        assert plan is not None and plan.seed == 3
        assert plan.specs[0].mode == "kill"

    def test_install_from_env_inline_and_file(self, tmp_path, monkeypatch):
        inline = FaultPlan(specs=(
            FaultSpec(point="cache.read"),
        ), seed=11).to_json()
        monkeypatch.setenv(FAULTS_ENV, inline)
        plan = faults.install_from_env()
        assert plan is not None and plan.seed == 11
        path = tmp_path / "plan.json"
        path.write_text(inline, encoding="utf-8")
        monkeypatch.setenv(FAULTS_ENV, str(path))
        plan = faults.install_from_env()
        assert plan is not None and plan.seed == 11


class TestCorruptBytes:
    def test_flips_exactly_one_byte_deterministically(self):
        data = bytes(range(64))
        plan_dict = FaultPlan(specs=(
            FaultSpec(point="cache.write", mode="corrupt"),
        ), seed=5).to_dict()
        mutations = []
        for _ in range(2):
            faults.install(FaultPlan.from_dict(plan_dict))
            mutations.append(faults.corrupt_bytes("cache.write", data))
        assert mutations[0] == mutations[1]  # same seed, same byte
        differing = [index for index in range(len(data))
                     if mutations[0][index] != data[index]]
        assert len(differing) == 1

    def test_corrupt_rules_do_not_raise_from_fire(self):
        faults.install(FaultPlan(specs=(
            FaultSpec(point="cache.write", mode="corrupt", count=-1),
        )))
        faults.fire("cache.write")  # control-flow hook ignores corrupt rules

    def test_window_applies_to_corruption(self):
        faults.install(FaultPlan(specs=(
            FaultSpec(point="cache.write", mode="corrupt", count=1),
        )))
        data = b"payload-bytes"
        assert faults.corrupt_bytes("cache.write", data) != data
        assert faults.corrupt_bytes("cache.write", data) == data  # spent


# ----------------------------------------------------------------------
# Containment: resilient_map against a scripted pool (no subprocesses).
# ----------------------------------------------------------------------
class _Future:
    def __init__(self, value=None, error=None):
        self._value = value
        self._error = error

    def result(self):
        if self._error is not None:
            raise self._error
        return self._value


class _ScriptedPool:
    """Breaks like a real process pool: one crash event voids the batch."""

    def __init__(self, session):
        self.session = session

    def submit_all(self, fn, items):
        labels = [unit_label(item) for item in items]
        for label in labels:
            if self.session.crashes_left.get(label, 0) > 0:
                self.session.crashes_left[label] -= 1
                return [_Future(error=BrokenExecutor("worker died"))
                        for _ in items]
        futures = []
        for item in items:
            try:
                futures.append(_Future(value=fn(self.session, item)))
            except Exception as exc:
                futures.append(_Future(error=exc))
        return futures


class _FakeSession:
    def __init__(self, crashes=None, breaker_threshold=99):
        self.crashes_left = dict(crashes or {})
        self.pool_calls = 0
        self.resets = 0
        self.health = PoolHealth()
        self.retry_policy = RetryPolicy(
            backoff_base=0.0, backoff_max=0.0,
            breaker_threshold=breaker_threshold)

    def pool(self):
        self.pool_calls += 1
        return _ScriptedPool(self)

    def reset_pool(self):
        self.resets += 1


def _shout(session, item):
    if item == "boom":
        raise ValueError("unit exploded")
    return item.upper()


class TestResilientMap:
    def test_clean_map_preserves_order(self):
        session = _FakeSession()
        assert resilient_map(session, _shout, ["a", "b", "c"]) == [
            "A", "B", "C"]
        assert session.health.pool_crashes == 0
        assert session.health.consecutive_crashes == 0

    def test_unit_exception_raises_in_strict_mode(self):
        with pytest.raises(ValueError, match="unit exploded"):
            resilient_map(_FakeSession(), _shout, ["a", "boom"])

    def test_unit_exception_becomes_unit_failure_when_not_strict(self):
        outcomes = resilient_map(_FakeSession(), _shout, ["a", "boom"],
                                 strict=False)
        assert outcomes[0] == "A"
        failure = outcomes[1]
        assert isinstance(failure, UnitFailure)
        assert failure.label == "boom" and "unit exploded" in failure.error

    def test_transient_crash_is_retried_with_backoff(self):
        session = _FakeSession(crashes={"b": 1})
        sleeps = []
        results = resilient_map(session, _shout, ["a", "b", "c"],
                                sleeper=sleeps.append)
        assert results == ["A", "B", "C"]
        assert session.health.pool_crashes == 1
        assert session.resets == 1
        assert len(sleeps) == 1  # one respawn, one backoff

    def test_poison_unit_is_quarantined_and_reported(self):
        session = _FakeSession(crashes={"b": 99})
        outcomes = resilient_map(session, _shout, ["a", "b", "c"],
                                 strict=False, sleeper=lambda _: None)
        assert outcomes[0] == "A" and outcomes[2] == "C"
        failure = outcomes[1]
        assert isinstance(failure, UnitFailure)
        assert "quarantined" in failure.error
        assert failure.crashes == RetryPolicy().unit_crash_limit
        assert "b" in session.health.quarantined
        # A later map fails the unit immediately, without pooling it.
        crashes_before = session.health.pool_crashes
        again = resilient_map(session, _shout, ["b"], strict=False)
        assert isinstance(again[0], UnitFailure)
        assert session.health.pool_crashes == crashes_before

    def test_strict_poison_raises_pool_crash_error_naming_the_unit(self):
        session = _FakeSession(crashes={"b": 99})
        with pytest.raises(PoolCrashError, match="suspect units: b"):
            resilient_map(session, _shout, ["a", "b", "c"],
                          sleeper=lambda _: None)

    def test_crash_budget_bounds_the_retries(self):
        session = _FakeSession(crashes={"a": 99, "b": 99, "c": 99})
        policy = RetryPolicy(backoff_base=0.0, backoff_max=0.0,
                             max_pool_crashes=2, breaker_threshold=99)
        with pytest.raises(PoolCrashError, match="exceeding the budget"):
            resilient_map(session, _shout, ["a", "b", "c"],
                          policy=policy, sleeper=lambda _: None)
        assert session.health.pool_crashes == 3  # budget + the fatal one

    def test_breaker_trips_to_serial_and_stays_tripped(self):
        session = _FakeSession(crashes={"a": 9, "b": 9}, breaker_threshold=2)
        results = resilient_map(session, _shout, ["a", "b", "c"],
                                sleeper=lambda _: None)
        assert results == ["A", "B", "C"]  # serial fallback still answers
        assert session.health.breaker_open
        # The next map never touches the pool.
        calls_before = session.pool_calls
        assert resilient_map(session, _shout, ["d"]) == ["D"]
        assert session.pool_calls == calls_before

    def test_bisection_isolates_the_culprit_in_a_wide_batch(self):
        items = [f"unit{index}" for index in range(12)] + ["b"]
        session = _FakeSession(crashes={"b": 99})
        outcomes = resilient_map(session, _shout, items, strict=False,
                                 sleeper=lambda _: None)
        failures = [out for out in outcomes if isinstance(out, UnitFailure)]
        assert [failure.label for failure in failures] == ["b"]
        assert [out for out in outcomes
                if not isinstance(out, UnitFailure)] == [
            item.upper() for item in items if item != "b"]


class TestRealPoolContainment:
    """The same contract against a real process pool and kill faults."""

    def test_injected_worker_kill_quarantines_only_the_poison_unit(self):
        from repro.api.batch import evaluate_many
        from repro.api.spec import EvalRequest
        from repro.runtime.session import Session

        faults.install(FaultPlan(specs=(
            FaultSpec(point="worker.entry", mode="kill", match="adpcm_c",
                      count=99),
        ), seed=2012))
        session = Session(jobs=2)
        session.retry_policy = RetryPolicy(
            backoff_base=0.01, backoff_max=0.02, breaker_threshold=99)
        requests = [
            EvalRequest.parse({"workload": name,
                               "machine": {"preset": "paper_default"}})
            for name in ("adpcm_c", "adpcm_d", "dijkstra", "gsm_c")
        ]
        results = evaluate_many(requests, session=session)
        errors = {result.workload: result.error for result in results
                  if result.error}
        assert set(errors) == {"adpcm_c"}
        assert "quarantined" in errors["adpcm_c"]
        assert "adpcm_c" in session.health.quarantined
        faults.clear()
        # The healthy units answered byte-identically to a clean session.
        clean = evaluate_many(requests[1:], session=Session())
        assert [r.to_dict() for r in results[1:]] == [
            r.to_dict() for r in clean]


# ----------------------------------------------------------------------
# Artifact-cache self-healing.
# ----------------------------------------------------------------------
class TestArtifactSelfHealing:
    def _cache(self, tmp_path):
        return ArtifactCache(root=tmp_path / "cache")

    def test_round_trip_and_stats(self, tmp_path):
        cache = self._cache(tmp_path)
        cache.store({"cpi": 1.25}, "profile", workload="sha")
        assert cache.load("profile", workload="sha") == {"cpi": 1.25}
        assert cache.stats.as_dict() == {
            "hits": 1, "misses": 0, "stores": 1,
            "corruptions": 0, "store_failures": 0}

    def test_truncated_entry_heals_to_a_miss_and_deletes(self, tmp_path):
        healed = []
        cache = self._cache(tmp_path)
        cache.on_corruption = lambda: healed.append(True)
        cache.store(list(range(100)), "trace", workload="sha")
        path = cache.path_for("trace", workload="sha")
        path.write_bytes(path.read_bytes()[:-20])
        assert cache.load("trace", workload="sha") is MISSING
        assert cache.stats.corruptions == 1
        assert healed == [True]
        assert not path.exists()  # healed: the corpse is gone
        # The rebuilt entry is trusted again.
        cache.store(list(range(100)), "trace", workload="sha")
        assert cache.load("trace", workload="sha") == list(range(100))

    def test_flipped_payload_byte_fails_the_digest(self, tmp_path):
        cache = self._cache(tmp_path)
        cache.store(b"x" * 256, "trace", workload="sha")
        path = cache.path_for("trace", workload="sha")
        raw = bytearray(path.read_bytes())
        raw[-3] ^= 0xFF
        path.write_bytes(bytes(raw))
        assert cache.load("trace", workload="sha") is MISSING
        assert cache.stats.corruptions == 1

    def test_legacy_two_pickle_entry_still_loads(self, tmp_path):
        cache = self._cache(tmp_path)
        path = cache.path_for("profile", workload="sha")
        path.parent.mkdir(parents=True)
        with path.open("wb") as handle:
            pickle.dump({"kind": "profile", "workload": "sha"}, handle)
            pickle.dump({"cpi": 2.5}, handle)  # pre-digest format
        assert cache.load("profile", workload="sha") == {"cpi": 2.5}
        assert cache.stats.hits == 1

    def test_injected_write_corruption_is_healed_on_read(self, tmp_path):
        cache = self._cache(tmp_path)
        faults.install(FaultPlan(specs=(
            FaultSpec(point="cache.write", mode="corrupt", count=1),
        ), seed=9))
        cache.store({"value": 42}, "profile", workload="sha")
        assert cache.stats.stores == 1  # the torn write itself "succeeded"
        assert cache.load("profile", workload="sha") is MISSING
        assert cache.stats.corruptions == 1
        cache.store({"value": 42}, "profile", workload="sha")  # window spent
        assert cache.load("profile", workload="sha") == {"value": 42}

    def test_injected_read_error_misses_without_deleting(self, tmp_path):
        cache = self._cache(tmp_path)
        cache.store("payload", "profile", workload="sha")
        faults.install(FaultPlan(specs=(
            FaultSpec(point="cache.read", mode="error", count=1),
        )))
        assert cache.load("profile", workload="sha") is MISSING
        assert cache.stats.corruptions == 0  # transient, entry kept
        assert cache.load("profile", workload="sha") == "payload"

    def test_injected_write_error_counts_a_store_failure(self, tmp_path):
        cache = self._cache(tmp_path)
        faults.install(FaultPlan(specs=(
            FaultSpec(point="cache.write", mode="error", count=1),
        )))
        cache.store("payload", "profile", workload="sha")
        assert cache.stats.store_failures == 1
        assert cache.load("profile", workload="sha") is MISSING


# ----------------------------------------------------------------------
# Result-cache digest verification and eviction labels.
# ----------------------------------------------------------------------
class TestResultCacheCorruption:
    def test_tampered_entry_serves_a_miss_and_counts_corrupt(self):
        cache = ResultCache(capacity=4, ttl_seconds=60.0)
        cache.put("key", b"the answer")
        assert cache.get("key") == b"the answer"
        expires_at, _, digest = cache._entries["key"]
        cache._entries["key"] = (expires_at, b"the answEr", digest)
        assert cache.get("key") is None  # never serve unverified bytes
        assert cache.stats.evicted["corrupt"] == 1
        assert cache.stats.corruptions == 1
        assert len(cache) == 0

    def test_eviction_reasons_have_distinct_labels(self):
        clock = [0.0]
        cache = ResultCache(capacity=1, ttl_seconds=10.0,
                            clock=lambda: clock[0])
        cache.put("a", b"1")
        cache.put("b", b"2")  # capacity evicts "a"
        clock[0] = 11.0
        assert cache.get("b") is None  # expired
        assert cache.stats.evicted == {
            "capacity": 1, "expired": 1, "corrupt": 0}
        assert tuple(cache.stats.evicted) == EVICTION_REASONS
        # Flat-counter compatibility readings.
        assert cache.stats.evictions == 1
        assert cache.stats.expirations == 1
        assert cache.stats.as_dict()["evictions"] == {
            "capacity": 1, "expired": 1, "corrupt": 0}


# ----------------------------------------------------------------------
# Client retries and typed failures.
# ----------------------------------------------------------------------
class _ScriptedClient(ServiceClient):
    """A client whose transport replays a scripted exchange sequence."""

    def __init__(self, script, retries=0):
        super().__init__(retries=retries, backoff_base=0.01,
                         backoff_max=0.05, rng=random.Random(0),
                         sleeper=self._sleep)
        self.script = list(script)
        self.sleeps: list[float] = []

    def _sleep(self, seconds):
        self.sleeps.append(seconds)

    def _request_full(self, method, path, body=None):
        step = self.script.pop(0)
        if isinstance(step, Exception):
            raise step
        return step


class TestClientRetries:
    def test_retryable_503_is_retried_then_succeeds(self):
        client = _ScriptedClient([
            (503, b'{"error": "queue full"}', {}),
            (200, b"fine", {}),
        ], retries=1)
        assert client._checked("GET", "/v1/health") == b"fine"
        assert len(client.sleeps) == 1

    def test_retry_after_header_floors_the_backoff(self):
        client = _ScriptedClient([
            (429, b'{"error": "limited"}', {"retry-after": "1.5"}),
            (200, b"fine", {}),
        ], retries=1)
        assert client._checked("GET", "/v1/health") == b"fine"
        assert client.sleeps[0] >= 1.5

    def test_exhausted_retries_raise_service_unavailable(self):
        client = _ScriptedClient([
            (429, b'{"error": "limited"}', {}),
            (429, b'{"error": "limited"}', {}),
        ], retries=1)
        with pytest.raises(ServiceUnavailable) as info:
            client._checked("GET", "/v1/health")
        assert info.value.status == 429
        assert info.value.message == "limited"

    def test_transport_failures_are_retried(self):
        client = _ScriptedClient([
            ServiceUnavailable(503, "connection refused"),
            ServiceTimeout(504, "socket deadline"),
            (200, b"fine", {}),
        ], retries=2)
        assert client._checked("GET", "/v1/health") == b"fine"
        assert len(client.sleeps) == 2

    def test_server_504_raises_service_timeout_without_retry(self):
        client = _ScriptedClient([
            (504, b'{"error": "deadline exceeded"}', {}),
            (200, b"never reached", {}),
        ], retries=3)
        with pytest.raises(ServiceTimeout) as info:
            client._checked("POST", "/v1/sweep", b"{}")
        assert info.value.status == 504
        assert len(client.script) == 1  # the 200 was never consumed

    def test_non_retryable_errors_raise_immediately(self):
        client = _ScriptedClient([
            (400, b'{"error": "bad request"}', {}),
        ], retries=3)
        with pytest.raises(ServiceError) as info:
            client._checked("POST", "/v1/eval", b"{}")
        assert info.value.status == 400
        assert not isinstance(info.value, (ServiceUnavailable,
                                           ServiceTimeout))
        assert client.sleeps == []

    def test_typed_exceptions_are_service_errors(self):
        assert issubclass(ServiceUnavailable, ServiceError)
        assert issubclass(ServiceTimeout, ServiceError)


# ----------------------------------------------------------------------
# Token-bucket rate limiting.
# ----------------------------------------------------------------------
class TestRateLimiting:
    def test_token_bucket_admits_burst_then_waits(self):
        bucket = TokenBucket(rate=2.0, burst=1, now=0.0)
        assert bucket.take(0.0) == 0.0
        wait = bucket.take(0.0)
        assert wait == pytest.approx(0.5)
        assert bucket.take(1.0) == 0.0  # refilled

    def test_limiter_is_per_client(self):
        clock = [0.0]
        limiter = RateLimiter(rate=1.0, burst=1, clock=lambda: clock[0])
        assert limiter.check("10.0.0.1") == 0.0
        assert limiter.check("10.0.0.2") == 0.0  # separate bucket
        assert limiter.check("10.0.0.1") > 0.0
        clock[0] = 2.0
        assert limiter.check("10.0.0.1") == 0.0

    def test_zero_rate_disables_limiting(self):
        assert not RateLimiter(0.0).enabled
        assert RateLimiter(2.5).enabled


# ----------------------------------------------------------------------
# Server edges: deadlines, rate limits, admission faults.
# ----------------------------------------------------------------------
def _serve(config):
    from repro.service.server import ServerThread

    return ServerThread(config)


class TestServerResilience:
    def test_rate_limited_posts_answer_429_with_retry_after(self):
        from repro.service.server import ServiceConfig

        with _serve(ServiceConfig(port=0, rate_limit=0.5,
                                  rate_burst=1)) as running:
            client = ServiceClient(port=running.port, timeout=30.0)
            client.wait_ready()
            body = b'{"workload": "sha", "machine": {"preset": "paper_default"}}'
            status, _, _ = client._request_full("POST", "/v1/eval", body)
            assert status == 200
            status, payload, headers = client._request_full(
                "POST", "/v1/eval", body)
            assert status == 429
            assert float(headers["retry-after"]) > 0.0
            assert b"rate limit" in payload
            # GET endpoints stay answerable from the throttled client.
            health = client.health()
            assert health["status"] == "ok"
            assert client.metrics()["rate_limited_total"] >= 1

    def test_request_deadline_answers_504_with_partial_sweep(self):
        import json as json_module

        from repro.api.sweep import SweepRequest
        from repro.machine import MACHINE_PRESETS
        from repro.service.server import ServiceConfig
        from repro.workloads.registry import suite_names

        sweep = SweepRequest.make(
            suite_names("mibench"),
            machines=[{"preset": name} for name in MACHINE_PRESETS.names()])
        with _serve(ServiceConfig(port=0, request_timeout=0.05)) as running:
            client = ServiceClient(port=running.port, timeout=60.0)
            client.wait_ready()
            status, payload, _ = client._request_full(
                "POST", "/v1/sweep", sweep.to_json().encode("utf-8"))
            assert status == 504
            envelope = json_module.loads(payload.decode("utf-8"))
            assert envelope["partial"] is True
            assert "deadline" in envelope["error"]
            assert envelope["count"] == len(sweep.expand())
            assert envelope["completed"] == len(envelope["results"])
            assert envelope["completed"] < envelope["count"]
            assert client.metrics()["deadline_timeouts_total"] >= 1
            # The typed client surface raises ServiceTimeout.
            with pytest.raises(ServiceTimeout):
                client.sweep(sweep)

    def test_admission_fault_answers_503_and_client_retry_recovers(self):
        from repro.service.server import ServiceConfig

        faults.install(FaultPlan(specs=(
            FaultSpec(point="jobs.admit", mode="error", count=1),
        )))
        with _serve(ServiceConfig(port=0)) as running:
            client = ServiceClient(port=running.port, timeout=30.0,
                                   retries=2, backoff_base=0.01)
            assert client.wait_ready()["faults_active"] is True
            result = client.evaluate({"workload": "sha",
                                      "machine": {"preset": "paper_default"}})
            assert result.error is None and result.cycles > 0

    def test_health_reports_resilience_state(self):
        from repro.service.server import ServiceConfig

        with _serve(ServiceConfig(port=0)) as running:
            client = ServiceClient(port=running.port, timeout=30.0)
            health = client.wait_ready()
            assert health["degraded"] is False
            assert health["quarantined_units"] == 0
            assert health["faults_active"] is False
            resilience = client.metrics()["resilience"]
            assert resilience["pool_crashes"] == 0
            assert resilience["breaker_open"] is False


# ----------------------------------------------------------------------
# The acceptance criterion: the full chaos drill, both backends.
# ----------------------------------------------------------------------
class TestChaosInvariants:
    @pytest.mark.parametrize("backend", ["python", "numpy"])
    def test_full_drill_passes(self, backend, monkeypatch):
        if backend == "numpy" and not accel.available_backends().get("numpy"):
            pytest.skip("numpy backend unavailable")
        previous = accel.active_backend()
        monkeypatch.setenv(accel.ACCEL_ENV, backend)
        accel.set_backend(backend)
        try:
            report = run_chaos(jobs=2, timeout=120.0)
        finally:
            accel.set_backend(previous)
        assert report.requests == 76  # 19 workloads x 4 presets
        assert report.passed, "\n" + report.render()
        names = {check.name for check in report.checks}
        # (a) no hang, (b) no wrong bytes, (c) quarantine as structured
        # errors, (d) breaker-tripped serial degradation.
        assert {"act1.no_hang", "act1.no_wrong_bytes",
                "act1.poison_quarantined", "act2.breaker_tripped",
                "act2.all_correct"} <= names
