"""Unit and property tests for the model's penalty formulas (Eqs. 3-16)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core import penalties

WIDTHS = st.integers(min_value=1, max_value=8)


class TestSlotCorrection:
    def test_values(self):
        assert penalties.slot_correction(1) == 0.0
        assert penalties.slot_correction(2) == pytest.approx(0.25)
        assert penalties.slot_correction(4) == pytest.approx(0.375)

    def test_invalid_width(self):
        with pytest.raises(ValueError):
            penalties.slot_correction(0)

    @given(width=WIDTHS)
    def test_bounded_below_half(self, width):
        assert 0.0 <= penalties.slot_correction(width) < 0.5


class TestMissAndBranchPenalties:
    def test_cache_miss_penalty(self):
        # Eq. 3 with a 10-cycle miss on a 4-wide machine: 10 - 3/8.
        assert penalties.cache_miss_penalty(10, 4) == pytest.approx(9.625)

    def test_cache_miss_penalty_never_negative(self):
        assert penalties.cache_miss_penalty(0.1, 4) == 0.0

    def test_branch_misprediction_penalty(self):
        # Eq. 4 with D=6, W=4: 6 + 3/8.
        assert penalties.branch_misprediction_penalty(6, 4) == pytest.approx(6.375)
        with pytest.raises(ValueError):
            penalties.branch_misprediction_penalty(0, 4)

    def test_taken_branch_penalty(self):
        assert penalties.taken_branch_penalty() == 1.0

    def test_long_latency_penalty(self):
        # Eq. 6 with a 4-cycle multiply on a 4-wide machine: 3 - 3/8.
        assert penalties.long_latency_penalty(4, 4) == pytest.approx(2.625)
        # Unit latency never incurs a penalty.
        assert penalties.long_latency_penalty(1, 4) == 0.0
        with pytest.raises(ValueError):
            penalties.long_latency_penalty(0.5, 4)

    @given(width=WIDTHS, latency=st.integers(min_value=1, max_value=200))
    def test_long_latency_monotone_in_latency(self, width, latency):
        assert (penalties.long_latency_penalty(latency + 1, width)
                >= penalties.long_latency_penalty(latency, width))


class TestDependencyPenalties:
    def test_probability_same_stage(self):
        # Eq. 9: (W - d) / W for d < W, zero beyond.
        assert penalties.probability_same_stage(1, 4) == pytest.approx(0.75)
        assert penalties.probability_same_stage(3, 4) == pytest.approx(0.25)
        assert penalties.probability_same_stage(4, 4) == 0.0
        assert penalties.probability_same_stage(9, 4) == 0.0
        with pytest.raises(ValueError):
            penalties.probability_same_stage(0, 4)

    def test_unit_dependency_penalty(self):
        # Eq. 11 term: ((W - d) / W)^2.
        assert penalties.unit_dependency_penalty(1, 4) == pytest.approx(0.5625)
        assert penalties.unit_dependency_penalty(3, 4) == pytest.approx(0.0625)
        assert penalties.unit_dependency_penalty(4, 4) == 0.0

    def test_long_dependency_penalty(self):
        # Eq. 12 term: (W - d) / W.
        assert penalties.long_dependency_penalty(1, 4) == pytest.approx(0.75)
        assert penalties.long_dependency_penalty(5, 4) == 0.0
        with pytest.raises(ValueError):
            penalties.long_dependency_penalty(0, 4)

    def test_load_dependency_penalty_same_stage_case(self):
        # Eq. 16 first sum, d < W: (W-d)/W * (2W-d)/W + d/W.
        width = 4
        for distance in range(1, width):
            expected = ((width - distance) / width * (2 * width - distance) / width
                        + distance / width)
            assert penalties.load_dependency_penalty(distance, width) == pytest.approx(expected)

    def test_load_dependency_penalty_next_stage_case(self):
        # Eq. 16 second sum, W <= d < 2W: ((2W - d)/W)^2.
        width = 4
        for distance in range(width, 2 * width):
            expected = ((2 * width - distance) / width) ** 2
            assert penalties.load_dependency_penalty(distance, width) == pytest.approx(expected)

    def test_load_dependency_penalty_beyond_window(self):
        assert penalties.load_dependency_penalty(8, 4) == 0.0
        assert penalties.load_dependency_penalty(20, 4) == 0.0
        with pytest.raises(ValueError):
            penalties.load_dependency_penalty(0, 4)

    def test_scalar_width_has_no_dependency_penalties(self):
        # On a 1-wide machine dependencies never share a stage (d >= W always).
        assert penalties.unit_dependency_total({1: 100, 2: 50}, 1) == 0.0
        assert penalties.long_dependency_total({1: 100}, 1) == 0.0
        # Loads still cost the load-use bubble at d = 1 on a scalar machine.
        assert penalties.load_dependency_total({1: 10}, 1) == pytest.approx(10.0)

    @given(distance=st.integers(min_value=1, max_value=16), width=WIDTHS)
    def test_penalties_bounded(self, distance, width):
        assert 0.0 <= penalties.unit_dependency_penalty(distance, width) <= 1.0
        assert 0.0 <= penalties.long_dependency_penalty(distance, width) <= 1.0
        assert 0.0 <= penalties.load_dependency_penalty(distance, width) <= 2.0

    @given(width=WIDTHS, distance=st.integers(min_value=1, max_value=15))
    def test_penalties_non_increasing_in_distance(self, width, distance):
        for function in (
            penalties.unit_dependency_penalty,
            penalties.long_dependency_penalty,
            penalties.load_dependency_penalty,
        ):
            assert function(distance, width) >= function(distance + 1, width) - 1e-12

    def test_totals_weight_by_counts(self):
        histogram = {1: 10, 2: 5, 3: 1, 7: 100}
        width = 4
        expected = (10 * penalties.unit_dependency_penalty(1, width)
                    + 5 * penalties.unit_dependency_penalty(2, width)
                    + 1 * penalties.unit_dependency_penalty(3, width))
        assert penalties.unit_dependency_total(histogram, width) == pytest.approx(expected)

    def test_load_total_includes_second_window(self):
        width = 4
        histogram = {5: 3}      # W <= d < 2W
        expected = 3 * penalties.load_dependency_penalty(5, width)
        assert penalties.load_dependency_total(histogram, width) == pytest.approx(expected)
