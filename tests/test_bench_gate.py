"""Unit tests for the benchmark regression gate (``repro bench --compare``)."""

from __future__ import annotations

import json

import pytest

from repro.bench import compare_results


def _payload(**medians) -> dict:
    return {"results": {name: {"median": value, "runs": [value]}
                        for name, value in medians.items()}}


def test_within_tolerance_passes():
    reference = _payload(a=1.0, b=0.5)
    current = _payload(a=1.2, b=0.55)
    assert compare_results(reference, current, 25.0) == []


def test_regression_beyond_tolerance_reported():
    reference = _payload(a=1.0, b=0.5)
    current = _payload(a=1.26, b=0.4)
    regressions = compare_results(reference, current, 25.0)
    assert len(regressions) == 1
    assert regressions[0].startswith("a:")
    assert "+26.0%" in regressions[0]


def test_only_shared_benchmarks_compared():
    reference = _payload(retired=1.0)
    current = _payload(brand_new=99.0)
    assert compare_results(reference, current, 0.0) == []


def test_improvements_never_flag():
    assert compare_results(_payload(a=2.0), _payload(a=0.1), 0.0) == []


def test_negative_tolerance_rejected():
    with pytest.raises(ValueError, match="non-negative"):
        compare_results(_payload(a=1.0), _payload(a=1.0), -1.0)


def _staged(median: float, **stages) -> dict:
    return {"results": {"sharded": {"median": median, "runs": [median],
                                    "stages": stages}}}


def test_stage_regression_beyond_tolerance_reported():
    reference = _staged(1.0, ship=0.2, profile=0.8)
    current = _staged(1.0, ship=0.3, profile=0.8)
    regressions = compare_results(reference, current, 25.0)
    assert len(regressions) == 1
    assert regressions[0].startswith("sharded[ship]:")
    assert "+50.0%" in regressions[0]


def test_stage_below_noise_floor_ignored():
    # A 0.01 s -> 0.04 s jump is 300% but under the measurable floor.
    reference = _staged(1.0, collect=0.01)
    current = _staged(1.0, collect=0.04)
    assert compare_results(reference, current, 25.0) == []


def test_older_reference_without_stages_passes_vacuously():
    reference = _payload(sharded=1.0)  # schema v3: medians only
    current = _staged(1.0, ship=9.0, profile=9.0)
    assert compare_results(reference, current, 0.0) == []
    # And the other direction: a staged reference vs a stage-less current.
    assert compare_results(current, reference, 0.0) == []


def test_stage_only_present_on_one_side_ignored():
    reference = _staged(1.0, ship=0.2)
    current = _staged(1.0, attach=99.0)
    assert compare_results(reference, current, 0.0) == []


def _search(median: float, evals: float | None = None,
            matched: bool | None = None) -> dict:
    entry: dict = {"median": median, "runs": [median]}
    if evals is not None:
        entry["evals_to_front"] = evals
    if matched is not None:
        entry["matched_exhaustive_best"] = matched
    return {"results": {"search_surrogate_dse": entry}}


def test_evals_to_front_regression_reported():
    reference = _search(1.0, evals=15, matched=True)
    current = _search(1.0, evals=40, matched=True)
    regressions = compare_results(reference, current, 25.0)
    assert len(regressions) == 1
    assert regressions[0].startswith("search_surrogate_dse[evals_to_front]:")
    assert "40 vs reference 15" in regressions[0]


def test_evals_to_front_within_tolerance_passes():
    reference = _search(1.0, evals=16, matched=True)
    current = _search(1.0, evals=18, matched=True)
    assert compare_results(reference, current, 25.0) == []


def test_losing_exhaustive_best_match_is_unconditional():
    reference = _search(1.0, evals=15, matched=True)
    current = _search(1.0, evals=15, matched=False)
    regressions = compare_results(reference, current, 1000.0)
    assert len(regressions) == 1
    assert "matched_exhaustive_best" in regressions[0]


def test_search_quality_absent_on_one_side_passes_vacuously():
    # Older (pre-v6) references carry no search-quality figures.
    reference = _search(1.0)
    current = _search(1.0, evals=99, matched=False)
    assert compare_results(reference, current, 0.0) == []
    assert compare_results(current, reference, 0.0) == []


def _obs(median: float, pct: float | None = None,
         limit: float | None = 2.0) -> dict:
    entry: dict = {"median": median, "runs": [median]}
    if pct is not None:
        entry["overhead_pct"] = pct
    if limit is not None:
        entry["overhead_limit_pct"] = limit
    return {"results": {"obs_overhead": entry}}


def test_obs_overhead_under_limit_passes():
    reference = _obs(1.0, pct=0.2)
    current = _obs(1.0, pct=1.9)
    assert compare_results(reference, current, 25.0) == []


def test_obs_overhead_over_limit_reported():
    reference = _obs(1.0, pct=0.2)
    current = _obs(1.0, pct=2.5)
    regressions = compare_results(reference, current, 1000.0)
    assert len(regressions) == 1
    assert regressions[0].startswith("obs_overhead[overhead_pct]:")
    assert "2.5% vs limit 2%" in regressions[0]


def test_obs_overhead_noisy_reference_escape():
    # The reference itself was over the limit and we did not get worse:
    # the gate must not wedge CI shut on a noisy committed reference.
    reference = _obs(1.0, pct=3.0)
    current = _obs(1.0, pct=2.5)
    assert compare_results(reference, current, 1000.0) == []


def test_obs_overhead_missing_reference_still_gates():
    # Older (pre-v7) references carry no overhead figure; the limit is
    # absolute, so the gate still fails.
    reference = _obs(1.0)
    current = _obs(1.0, pct=2.5)
    regressions = compare_results(reference, current, 1000.0)
    assert len(regressions) == 1
    assert "reference n/a" in regressions[0]


def test_obs_overhead_absent_on_current_passes_vacuously():
    reference = _obs(1.0, pct=0.2)
    current = _obs(1.0, limit=None)
    assert compare_results(reference, current, 0.0) == []


def test_cli_gate_exit_codes(tmp_path, monkeypatch):
    """End-to-end: the bench subcommand compares and gates on exit code."""
    from repro import bench

    reference_file = tmp_path / "ref.json"
    reference_file.write_text(json.dumps(_payload(fake=1.0)))

    def fake_run(output, repeat=3, jobs=1, stage_tolerance_ms=50.0):
        payload = {"schema_version": bench.BENCH_SCHEMA_VERSION,
                   **_payload(fake=5.0)}
        output.write_text(json.dumps(payload))
        return payload

    monkeypatch.setattr(bench, "run", fake_run)
    out = tmp_path / "out.json"
    assert bench.main(["--output", str(out), "--repeat", "1",
                       "--compare", str(reference_file)]) == 1
    loose = bench.main(["--output", str(out), "--repeat", "1",
                        "--compare", str(reference_file),
                        "--tolerance", "1000"])
    assert loose == 0


def test_cli_gate_missing_reference(tmp_path, monkeypatch):
    from repro import bench

    monkeypatch.setattr(
        bench, "run",
        lambda output, repeat=3, jobs=1, stage_tolerance_ms=50.0: _payload(fake=1.0),
    )
    with pytest.raises(SystemExit):
        bench.main(["--output", str(tmp_path / "o.json"),
                    "--compare", str(tmp_path / "missing.json")])
