"""Tests for chunked traces, the spill store and the portable format."""

from __future__ import annotations

import pytest

from repro.trace.store import (
    TraceStore,
    import_portable,
    portable_info,
    store_info,
    write_portable,
)
from repro.trace.trace import COLUMN_NAMES, ChunkedTrace, Trace
from repro.workloads.synthetic import (
    SyntheticWorkloadSpec,
    SyntheticTraceGenerator,
    generate_synthetic_store,
    generate_synthetic_trace,
)

SPEC = SyntheticWorkloadSpec(instructions=5_000, seed=7)


@pytest.fixture(scope="module")
def trace() -> Trace:
    return generate_synthetic_trace(SPEC)


def resolved_rows(source: Trace | ChunkedTrace) -> list[tuple]:
    """Every dynamic row with the static resolved by value.

    Statics-table numbering is an implementation detail (the streamed
    writer interns across the whole stream, the in-memory constructor per
    trace), so equality is defined over the resolved instruction stream.
    """
    chunks = source.chunks() if isinstance(source, ChunkedTrace) else (source,)
    rows = []
    for chunk in chunks:
        statics = chunk.statics
        for position in range(len(chunk.pcs)):
            rows.append((
                chunk.pcs[position], chunk.next_pcs[position],
                chunk.mem_addrs[position], chunk.op_classes[position],
                chunk.taken[position],
                statics[chunk.static_index[position]],
            ))
    return rows


# ----------------------------------------------------------------------
# ChunkedTrace views.
# ----------------------------------------------------------------------
@pytest.mark.parametrize("chunk_length", [1, 7, 1024, 10_000])
def test_chunked_view_preserves_rows(trace, chunk_length):
    chunked = ChunkedTrace.from_trace(trace, chunk_length)
    assert len(chunked) == len(trace)
    assert resolved_rows(chunked) == resolved_rows(trace)
    # Global sequence numbers: every chunk continues where the last ended.
    for index in range(chunked.num_chunks):
        start, stop = chunked.chunk_bounds(index)
        chunk = chunked.chunk(index)
        assert list(chunk.seqs) == list(range(start, stop))


def test_chunk_length_beyond_trace_is_one_chunk(trace):
    chunked = ChunkedTrace.from_trace(trace, len(trace) + 1_000)
    assert chunked.num_chunks == 1
    assert len(chunked.chunk(0)) == len(trace)


def test_to_trace_round_trip(trace):
    chunked = ChunkedTrace.from_trace(trace, 512)
    rebuilt = chunked.to_trace()
    assert resolved_rows(rebuilt) == resolved_rows(trace)


# ----------------------------------------------------------------------
# Spill store.
# ----------------------------------------------------------------------
def test_store_round_trip(trace, tmp_path):
    opened = TraceStore.write(trace, tmp_path / "store", chunk_length=777)
    assert isinstance(opened, ChunkedTrace)
    assert len(opened) == len(trace)
    assert resolved_rows(opened) == resolved_rows(trace)

    reopened = TraceStore.open(tmp_path / "store")
    assert reopened.name == trace.name
    assert resolved_rows(reopened) == resolved_rows(trace)


def test_store_info_reports_geometry(trace, tmp_path):
    TraceStore.write(trace, tmp_path / "store", chunk_length=1024)
    info = store_info(tmp_path / "store")
    assert info["length"] == len(trace)
    assert info["chunk_length"] == 1024
    assert info["num_chunks"] == -(-len(trace) // 1024)
    assert info["total_column_bytes"] == info["bytes_per_row"] * len(trace)


def test_open_rejects_non_store(tmp_path):
    with pytest.raises(FileNotFoundError, match="not a trace store"):
        TraceStore.open(tmp_path)


# ----------------------------------------------------------------------
# Portable ingestion format.
# ----------------------------------------------------------------------
def test_portable_round_trip(trace, tmp_path):
    portable = tmp_path / "trace.rtp"
    write_portable(trace, portable)
    info = portable_info(portable)
    assert info["length"] == len(trace)
    assert info["name"] == trace.name
    assert info["num_statics"] == len(trace.statics)

    imported = import_portable(portable, tmp_path / "store", chunk_length=900)
    assert resolved_rows(imported) == resolved_rows(trace)


def test_portable_rejects_bad_magic(tmp_path):
    bogus = tmp_path / "bogus.rtp"
    bogus.write_bytes(b"#NOT-A-TRACE\n{}\n")
    with pytest.raises(ValueError, match="not a portable trace"):
        portable_info(bogus)


def test_portable_rejects_truncation(trace, tmp_path):
    portable = tmp_path / "trace.rtp"
    write_portable(trace, portable)
    clipped = portable.read_bytes()[:-64]
    portable.write_bytes(clipped)
    with pytest.raises(ValueError, match="truncated"):
        import_portable(portable, tmp_path / "store")


# ----------------------------------------------------------------------
# Streamed synthetic generation.
# ----------------------------------------------------------------------
def test_synthetic_store_matches_in_memory(tmp_path):
    streamed = generate_synthetic_store(tmp_path / "store", SPEC,
                                        chunk_length=640)
    assert resolved_rows(streamed) == resolved_rows(
        generate_synthetic_trace(SPEC))


def test_synthetic_store_scaling(tmp_path):
    scale = 6
    streamed = generate_synthetic_store(tmp_path / "store", SPEC, scale=scale,
                                        chunk_length=4096)
    assert len(streamed) == scale * SPEC.instructions
    # The statics table is bounded by the opcode/register combinations,
    # not the trace length — the property that keeps scaled generation
    # (and the spill store's shared statics file) at bounded memory.
    assert len(streamed.statics) < SPEC.instructions


def test_synthetic_generator_interns_statics():
    trace = SyntheticTraceGenerator(SPEC).generate()
    assert len(trace.statics) < len(trace) / 4


def test_store_write_requires_nonexistent_or_empty(trace, tmp_path):
    target = tmp_path / "store"
    TraceStore.write(trace, target, chunk_length=2048)
    with pytest.raises((FileExistsError, OSError)):
        TraceStore.write(trace, target, chunk_length=2048)
