"""Tests for the statistical (synthetic) trace generator."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.model import InOrderMechanisticModel
from repro.isa.opcodes import OpClass
from repro.machine import MachineConfig
from repro.pipeline.inorder import InOrderPipeline
from repro.profiler import collect_dependencies, profile_program
from repro.workloads.synthetic import (
    SyntheticTraceGenerator,
    SyntheticWorkloadSpec,
    generate_synthetic_trace,
)


class TestSpecValidation:
    def test_defaults_are_valid(self):
        spec = SyntheticWorkloadSpec()
        assert spec.instructions > 0

    def test_fractions_must_not_exceed_one(self):
        with pytest.raises(ValueError):
            SyntheticWorkloadSpec(load_fraction=0.6, store_fraction=0.5)

    def test_rates_must_be_probabilities(self):
        with pytest.raises(ValueError):
            SyntheticWorkloadSpec(branch_taken_rate=1.5)
        with pytest.raises(ValueError):
            SyntheticWorkloadSpec(streaming_fraction=-0.1)

    def test_structural_parameters_validated(self):
        with pytest.raises(ValueError):
            SyntheticWorkloadSpec(instructions=0)
        with pytest.raises(ValueError):
            SyntheticWorkloadSpec(static_code_size=0)
        with pytest.raises(ValueError):
            SyntheticWorkloadSpec(data_footprint_bytes=0)
        with pytest.raises(ValueError):
            SyntheticWorkloadSpec(dependency_distances={})
        with pytest.raises(ValueError):
            SyntheticWorkloadSpec(dependency_distances={0: 1.0})


class TestGeneratedTraces:
    def test_length_and_name(self):
        trace = generate_synthetic_trace(SyntheticWorkloadSpec(name="x", instructions=5000))
        assert len(trace) == 5000
        assert trace.name == "x"

    def test_deterministic_for_same_seed(self):
        spec = SyntheticWorkloadSpec(instructions=3000, seed=7)
        first = generate_synthetic_trace(spec)
        second = generate_synthetic_trace(spec)
        assert [d.pc for d in first] == [d.pc for d in second]
        assert [d.mem_addr for d in first] == [d.mem_addr for d in second]

    def test_different_seed_differs(self):
        first = generate_synthetic_trace(SyntheticWorkloadSpec(instructions=3000, seed=1))
        second = generate_synthetic_trace(SyntheticWorkloadSpec(instructions=3000, seed=2))
        assert [d.mem_addr for d in first] != [d.mem_addr for d in second]

    def test_instruction_mix_matches_spec(self):
        spec = SyntheticWorkloadSpec(
            instructions=30_000,
            load_fraction=0.25,
            store_fraction=0.10,
            multiply_fraction=0.05,
            branch_fraction=0.15,
        )
        mix = generate_synthetic_trace(spec).instruction_mix()
        total = sum(mix.values())
        assert mix[OpClass.LOAD] / total == pytest.approx(0.25, abs=0.02)
        assert mix[OpClass.STORE] / total == pytest.approx(0.10, abs=0.02)
        assert mix[OpClass.INT_MUL] / total == pytest.approx(0.05, abs=0.01)
        assert mix[OpClass.BRANCH] / total == pytest.approx(0.15, abs=0.02)

    def test_dependency_distances_match_spec(self):
        spec = SyntheticWorkloadSpec(
            instructions=20_000,
            dependency_distances={1: 0.5, 4: 0.5},
            branch_fraction=0.0,
            load_fraction=0.0,
            store_fraction=0.0,
            multiply_fraction=0.0,
            divide_fraction=0.0,
        )
        deps = collect_dependencies(generate_synthetic_trace(spec))
        total = deps.total()
        assert deps.count("unit", 1) / total == pytest.approx(0.5, abs=0.03)
        assert deps.count("unit", 4) / total == pytest.approx(0.5, abs=0.03)

    def test_memory_footprint_respected(self):
        spec = SyntheticWorkloadSpec(instructions=10_000, data_footprint_bytes=4096)
        trace = generate_synthetic_trace(spec)
        addresses = [d.mem_addr for d in trace if d.mem_addr is not None]
        assert addresses
        assert max(addresses) < 0x100000 + 4096
        assert min(addresses) >= 0x100000

    def test_static_code_footprint_respected(self):
        spec = SyntheticWorkloadSpec(instructions=10_000, static_code_size=512)
        trace = generate_synthetic_trace(spec)
        assert max(d.pc for d in trace) < 512 * 4

    def test_branch_taken_rate(self):
        spec = SyntheticWorkloadSpec(instructions=20_000, branch_fraction=0.2,
                                     branch_taken_rate=0.8)
        trace = generate_synthetic_trace(spec)
        branches = [d for d in trace if d.is_branch]
        taken = sum(1 for d in branches if d.taken)
        assert taken / len(branches) == pytest.approx(0.8, abs=0.08)


class TestModelOnSyntheticTraces:
    @pytest.mark.parametrize("width", [1, 2, 4])
    def test_model_tracks_simulator_on_synthetic_traces(self, width):
        machine = MachineConfig(width=width, name=f"synthetic-w{width}")
        trace = generate_synthetic_trace(SyntheticWorkloadSpec(instructions=12_000))
        model = InOrderMechanisticModel(machine).predict_trace(trace)
        simulated = InOrderPipeline(machine).run(trace)
        error = abs(model.cpi - simulated.cpi) / simulated.cpi
        assert error < 0.20

    def test_more_dependencies_means_higher_cpi(self):
        machine = MachineConfig(name="dep-study")
        tight = SyntheticWorkloadSpec(
            instructions=10_000, dependency_distances={1: 1.0}, seed=3
        )
        loose = SyntheticWorkloadSpec(
            instructions=10_000, dependency_distances={16: 1.0}, seed=3
        )
        tight_cpi = InOrderMechanisticModel(machine).predict_trace(
            generate_synthetic_trace(tight)
        ).cpi
        loose_cpi = InOrderMechanisticModel(machine).predict_trace(
            generate_synthetic_trace(loose)
        ).cpi
        assert tight_cpi > loose_cpi

    def test_divides_raise_cpi(self):
        machine = MachineConfig(name="div-study")
        with_div = SyntheticWorkloadSpec(instructions=10_000, divide_fraction=0.05, seed=4)
        without_div = SyntheticWorkloadSpec(instructions=10_000, divide_fraction=0.0, seed=4)
        cpi_with = InOrderMechanisticModel(machine).predict_trace(
            generate_synthetic_trace(with_div)
        ).cpi
        cpi_without = InOrderMechanisticModel(machine).predict_trace(
            generate_synthetic_trace(without_div)
        ).cpi
        assert cpi_with > cpi_without

    @given(
        load_fraction=st.floats(min_value=0.0, max_value=0.3),
        branch_fraction=st.floats(min_value=0.0, max_value=0.25),
        width=st.sampled_from([1, 2, 4]),
    )
    @settings(max_examples=10, deadline=None)
    def test_cpi_never_below_ideal(self, load_fraction, branch_fraction, width):
        """Property: model CPI >= 1/W for any synthetic workload."""
        spec = SyntheticWorkloadSpec(
            instructions=3_000,
            load_fraction=load_fraction,
            branch_fraction=branch_fraction,
        )
        machine = MachineConfig(width=width, name=f"prop-w{width}")
        trace = SyntheticTraceGenerator(spec).generate()
        model = InOrderMechanisticModel(machine).predict_trace(trace)
        assert model.cpi >= 1.0 / width
        simulated = InOrderPipeline(machine).run(trace)
        assert simulated.cpi >= 1.0 / width

    def test_profile_roundtrip(self):
        trace = generate_synthetic_trace(SyntheticWorkloadSpec(instructions=8_000))
        profile = profile_program(trace)
        assert profile.instructions == 8_000
        assert profile.dependencies.total() > 0
