"""Tests for the compiler passes (instruction scheduling, loop unrolling)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.isa import Instruction, Opcode, ProgramBuilder
from repro.profiler import collect_dependencies
from repro.trace import FunctionalSimulator
from repro.workloads import get_workload
from repro.workloads.compiler import (
    InstructionScheduler,
    LoopUnroller,
    optimization_variants,
    _block_dependences,
)


def final_memory(program, memory):
    simulator = FunctionalSimulator(program, memory=memory.copy(),
                                    max_instructions=3_000_000)
    simulator.run()
    return dict(simulator.memory._words)


class TestBlockDependences:
    def test_raw_dependence(self):
        instructions = [
            Instruction(Opcode.LI, dest=1, imm=5),
            Instruction(Opcode.ADDI, dest=2, src1=1, imm=1),
        ]
        deps = _block_dependences(instructions)
        assert deps[1] == {0}

    def test_war_and_waw(self):
        instructions = [
            Instruction(Opcode.ADDI, dest=2, src1=1, imm=1),   # reads r1
            Instruction(Opcode.LI, dest=1, imm=5),             # WAR with 0
            Instruction(Opcode.LI, dest=1, imm=6),             # WAW with 1
        ]
        deps = _block_dependences(instructions)
        assert 0 in deps[1]
        assert 1 in deps[2]

    def test_memory_ordering(self):
        instructions = [
            Instruction(Opcode.LW, dest=2, src1=1),
            Instruction(Opcode.SW, src1=1, src2=2),
            Instruction(Opcode.LW, dest=3, src1=1),
        ]
        deps = _block_dependences(instructions)
        assert 0 in deps[1]       # store ordered after earlier load
        assert 1 in deps[2]       # later load ordered after the store


class TestScheduler:
    def test_schedule_preserves_instruction_multiset(self):
        workload = get_workload("sha", use_cache=False, optimize=False)
        scheduled = InstructionScheduler().run(workload.program)
        assert sorted(str(i) for i in scheduled) == sorted(
            str(i) for i in workload.program
        )
        assert set(scheduled.labels) == set(workload.program.labels)

    @pytest.mark.parametrize("name", ["sha", "tiff2bw", "gsm_c", "qsort"])
    def test_schedule_preserves_semantics(self, name):
        workload = get_workload(name, use_cache=False, optimize=False)
        scheduled = InstructionScheduler().run(workload.program)
        assert final_memory(scheduled, workload.memory) == \
            final_memory(workload.program, workload.memory)

    def test_schedule_increases_short_distance_dependencies(self):
        """Scheduling must reduce distance-1 dependencies (the point of -O3)."""
        workload = get_workload("sha", use_cache=False, optimize=False)
        original_trace = workload.trace()
        scheduled = InstructionScheduler().run(workload.program)
        scheduled_trace = FunctionalSimulator(
            scheduled, memory=workload.memory.copy()
        ).run()
        original_deps = collect_dependencies(original_trace)
        scheduled_deps = collect_dependencies(scheduled_trace)
        assert scheduled_deps.count("unit", 1) < original_deps.count("unit", 1)

    def test_small_blocks_untouched(self):
        b = ProgramBuilder("tiny")
        b.li(1, 1)
        b.halt()
        scheduled = InstructionScheduler().run(b.build())
        assert [i.opcode for i in scheduled] == [Opcode.LI, Opcode.HALT]

    def test_halt_stays_last(self):
        b = ProgramBuilder("tail")
        b.li(1, 1)
        b.li(2, 2)
        b.li(3, 3)
        b.halt()
        scheduled = InstructionScheduler().run(b.build())
        assert scheduled.instructions[-1].opcode is Opcode.HALT

    @given(
        st.lists(
            st.tuples(
                st.integers(min_value=1, max_value=6),     # dest
                st.integers(min_value=0, max_value=6),     # src1
                st.integers(min_value=0, max_value=6),     # src2
            ),
            min_size=3,
            max_size=25,
        )
    )
    @settings(max_examples=40, deadline=None)
    def test_schedule_block_respects_dependences(self, triples):
        """Property: scheduling any ALU block keeps producers before consumers."""
        instructions = [
            Instruction(Opcode.ADD, dest=dest, src1=src1, src2=src2)
            for dest, src1, src2 in triples
        ]
        scheduled = InstructionScheduler().schedule_block(instructions)
        assert sorted(map(id, scheduled)) == sorted(map(id, instructions))
        dependences = _block_dependences(instructions)
        position = {id(instr): i for i, instr in enumerate(scheduled)}
        for consumer_index, producers in enumerate(dependences):
            for producer_index in producers:
                assert (position[id(instructions[producer_index])]
                        < position[id(instructions[consumer_index])])


class TestUnroller:
    def test_invalid_factor(self):
        with pytest.raises(ValueError):
            LoopUnroller(factor=1)

    def test_unrolls_counted_loop(self):
        b = ProgramBuilder("counted")
        b.li(1, 8)          # trip count divisible by 2
        b.li(2, 0)
        b.label("top")
        b.addi(2, 2, 3)
        b.addi(1, 1, -1)
        b.bne(1, 0, "top")
        b.halt()
        program = b.build()
        unrolled = LoopUnroller(factor=2).run(program)
        assert len(unrolled) > len(program)
        # Same architectural result, half the taken branches.
        simulator = FunctionalSimulator(unrolled)
        trace = simulator.run()
        assert simulator.registers[2] == 24
        branches = [d for d in trace if d.is_branch]
        assert len(branches) == 4

    def test_skips_odd_trip_count(self):
        b = ProgramBuilder("odd")
        b.li(1, 7)
        b.label("top")
        b.addi(2, 2, 1)
        b.addi(1, 1, -1)
        b.bne(1, 0, "top")
        b.halt()
        program = b.build()
        unrolled = LoopUnroller(factor=2).run(program)
        assert len(unrolled) == len(program)

    def test_skips_loops_with_internal_control_flow(self):
        b = ProgramBuilder("branchy")
        b.li(1, 8)
        b.label("top")
        b.beq(2, 0, "skip")
        b.addi(3, 3, 1)
        b.label("skip")
        b.addi(1, 1, -1)
        b.bne(1, 0, "top")
        b.halt()
        program = b.build()
        unrolled = LoopUnroller(factor=2).run(program)
        assert len(unrolled) == len(program)

    def test_skips_unknown_trip_count(self):
        b = ProgramBuilder("dynamic")
        b.mov(1, 9)          # counter comes from a register, not a literal
        b.label("top")
        b.addi(1, 1, -1)
        b.bne(1, 0, "top")
        b.halt()
        program = b.build()
        unrolled = LoopUnroller(factor=2).run(program)
        assert len(unrolled) == len(program)

    @pytest.mark.parametrize("name", ["sha", "tiff2bw", "lame"])
    def test_unroll_preserves_semantics_on_kernels(self, name):
        workload = get_workload(name, use_cache=False, optimize=False)
        unrolled = LoopUnroller(factor=2).run(workload.program)
        assert final_memory(unrolled, workload.memory) == \
            final_memory(workload.program, workload.memory)

    def test_unroll_reduces_dynamic_branches(self):
        workload = get_workload("tiff2bw", use_cache=False, optimize=False)
        unrolled = LoopUnroller(factor=2).run(workload.program)
        original_trace = workload.trace()
        unrolled_trace = FunctionalSimulator(
            unrolled, memory=workload.memory.copy()
        ).run()
        original_branches = sum(1 for d in original_trace if d.is_branch)
        unrolled_branches = sum(1 for d in unrolled_trace if d.is_branch)
        assert unrolled_branches < original_branches
        assert len(unrolled_trace) < len(original_trace)


class TestOptimizationVariants:
    def test_variants_named_and_consistent(self):
        workload = get_workload("sha", use_cache=False, optimize=False)
        variants = optimization_variants(workload)
        assert set(variants) == {"nosched", "O3", "unroll"}
        assert variants["O3"].name == "sha.O3"
        reference = final_memory(workload.program, workload.memory)
        for variant in variants.values():
            assert final_memory(variant.program, variant.memory) == reference

    def test_scheduling_reduces_dependency_pressure(self, default_machine):
        from repro.core.model import predict_workload

        workload = get_workload("tiffdither", use_cache=False, optimize=False)
        variants = optimization_variants(workload)
        nosched = predict_workload(variants["nosched"], default_machine)
        o3 = predict_workload(variants["O3"], default_machine)
        assert o3.cycles < nosched.cycles
