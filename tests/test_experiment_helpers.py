"""Tests for experiment helpers (table formatting, benchmark selections)
and for the workload registry's optimization switch."""

import pytest

from repro.experiments import common
from repro.experiments.speedup import SpeedupResult
from repro.profiler import collect_dependencies
from repro.workloads import get_workload, mibench_suite
from repro.workloads.registry import MIBENCH_BUILDERS


class TestFormatTable:
    def test_alignment_and_floats(self):
        text = common.format_table(
            ("name", "value"),
            [("alpha", 1.23456), ("b", 2.0)],
        )
        lines = text.splitlines()
        assert lines[0].startswith("name")
        assert "-----" in lines[1]
        assert "1.235" in lines[2]
        assert "2.000" in lines[3]
        # Every row is padded to the same width.
        assert len(set(len(line.rstrip()) for line in lines[:2])) <= 2

    def test_custom_float_format(self):
        text = common.format_table(("x",), [(0.123456,)], float_format="{:.1f}")
        assert "0.1" in text

    def test_non_float_cells_passed_through(self):
        text = common.format_table(("a", "b"), [(1, "yes")])
        assert "1" in text and "yes" in text


class TestBenchmarkSelections:
    def test_figure_selections_reference_real_workloads(self):
        for selection in (
            common.FIGURE4_BENCHMARKS,
            common.FIGURE7_BENCHMARKS,
            common.FIGURE8_BENCHMARKS,
            common.FIGURE9_BENCHMARKS,
            common.FIGURE5_FAST_BENCHMARKS,
        ):
            for name in selection:
                assert name in MIBENCH_BUILDERS

    def test_figure7_covers_13_benchmarks_like_the_paper(self):
        assert len(common.FIGURE7_BENCHMARKS) == 13

    def test_default_machine_is_paper_default(self):
        machine = common.default_machine()
        assert machine.width == 4
        assert machine.pipeline_stages == 9


class TestSpeedupResult:
    def test_derived_ratios(self):
        result = SpeedupResult(
            benchmark="sha",
            configurations=10,
            profiling_seconds=1.0,
            model_seconds=0.001,
            simulation_seconds=2.0,
        )
        assert result.speedup_model_only == pytest.approx(2000.0)
        assert result.speedup_including_profiling == pytest.approx(2.0 / 1.001)

    def test_zero_division_guard(self):
        result = SpeedupResult("sha", 1, 0.0, 0.0, 1.0)
        assert result.speedup_model_only > 0
        assert result.speedup_including_profiling > 0


class TestRegistryOptimizationSwitch:
    def test_optimized_and_raw_variants_are_cached_separately(self):
        optimized = get_workload("sha", optimize=True)
        raw = get_workload("sha", optimize=False)
        assert optimized is not raw
        assert get_workload("sha", optimize=True) is optimized
        assert get_workload("sha", optimize=False) is raw

    def test_optimized_kernel_has_fewer_adjacent_dependencies(self):
        raw_trace = get_workload("tiff2bw", optimize=False).trace()
        optimized_trace = get_workload("tiff2bw", optimize=True).trace()
        raw_deps = collect_dependencies(raw_trace)
        optimized_deps = collect_dependencies(optimized_trace)
        assert optimized_deps.count("unit", 1) <= raw_deps.count("unit", 1)
        # Scheduling reorders but never adds or removes instructions.
        assert len(raw_trace) == len(optimized_trace)

    def test_suites_use_optimized_kernels(self):
        workload = mibench_suite(["sha"])[0]
        assert workload is get_workload("sha", optimize=True)

    def test_optimized_program_keeps_name(self):
        workload = get_workload("dijkstra", optimize=True)
        assert workload.program.name == "dijkstra"
        assert workload.name == "dijkstra"
