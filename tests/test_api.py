"""Tests for the ``repro.api`` evaluation facade.

Covers the acceptance criteria of the API redesign: lossless JSON round
trips, the three backends answering the same request through one facade,
byte-identical parallel batches, the sweep grammar, the registry plugin
points and the ``eval`` CLI subcommand.
"""

from __future__ import annotations

import contextlib
import io
import json

import pytest

from repro import api
from repro.api.backends import BACKENDS, BackendCapabilities, EvalBackend, PointEvaluation
from repro.api.batch import results_table
from repro.cli import main as cli_main
from repro.dse.space import reduced_design_space
from repro.machine import MachineConfig
from repro.registry import Registry
from repro.runtime.session import Session
from repro.workloads import get_workload


@pytest.fixture(scope="module")
def session():
    return Session()


def _request(**overrides) -> api.EvalRequest:
    payload = {
        "workload": api.WorkloadSpec("sha"),
        "machine": api.MachineSpec.make("paper_default", l2_size="1MB",
                                        branch_predictor="hybrid_3.5kb"),
    }
    payload.update(overrides)
    return api.EvalRequest(**payload)


class TestRegistry:
    def test_register_get_and_aliases(self):
        registry = Registry("widget")
        registry.register("alpha", aliases=("a",), colour="red")(object())
        assert "alpha" in registry and "a" in registry
        assert registry.canonical("a") == "alpha"
        assert registry.metadata("a")["colour"] == "red"
        assert registry.names(colour="red") == ["alpha"]
        assert registry.names(colour="blue") == []

    def test_duplicate_registration_rejected(self):
        registry = Registry("widget")
        registry.register("alpha")(1)
        with pytest.raises(KeyError, match="already registered"):
            registry.register("alpha")(2)
        with pytest.raises(KeyError, match="already registered"):
            registry.register("beta", aliases=("alpha",))(3)

    def test_unknown_lookup_lists_known_names(self):
        registry = Registry("widget")
        registry.register("alpha")(1)
        with pytest.raises(KeyError, match="unknown widget 'beta'.*alpha"):
            registry.get("beta")

    def test_unregister_removes_entry_and_aliases(self):
        registry = Registry("widget")
        registry.register("alpha", aliases=("a",))(1)
        registry.unregister("a")
        assert "alpha" not in registry and "a" not in registry


class TestRequestRoundTrip:
    def test_eval_request_json_round_trip(self):
        request = _request(backend="simulator", with_power=True, tag="point-7")
        clone = api.EvalRequest.from_json(request.to_json())
        assert clone == request
        # Size strings survive serialization verbatim.
        assert clone.machine.overrides["l2_size"] == "1MB"

    def test_request_from_plain_dict_forms(self):
        request = api.EvalRequest.from_dict({
            "workload": "sha",
            "machine": {"preset": "paper_default", "l2_size": "1MB"},
        })
        assert request.workload == api.WorkloadSpec("sha", "O3")
        assert request.machine.resolve().l2_size == 1024 * 1024
        assert request.backend == "analytical"

    def test_unknown_request_keys_rejected(self):
        with pytest.raises(ValueError, match="unknown evaluation request keys"):
            api.EvalRequest.from_dict({"workload": "sha", "wierd": 1})

    def test_eval_result_json_round_trip_with_none_fields(self, session):
        result = api.evaluate(_request(backend="simulator"), session=session)
        assert result.cpi_stack is None and result.energy_joules is None
        clone = api.EvalResult.from_json(result.to_json())
        assert clone == result
        assert clone.edp is None

    def test_eval_result_json_round_trip_with_power(self, session):
        result = api.evaluate(_request(with_power=True), session=session)
        assert result.energy_joules > 0 and result.cpi_stack
        clone = api.EvalResult.from_json(result.to_json())
        assert clone == result
        assert clone.edp == pytest.approx(result.energy_joules * result.seconds)

    def test_machine_spec_from_machine_is_lossless(self):
        machine = MachineConfig(width=2, pipeline_stages=7, frequency_mhz=800,
                                l2_size=1024 * 1024, name="w2_custom")
        spec = api.MachineSpec.from_machine(machine)
        resolved = spec.resolve()
        assert resolved == machine
        assert resolved.name == "w2_custom"
        # Only differing fields are carried as overrides.
        assert "l1i_size" not in spec.overrides


class TestBackends:
    def test_same_request_through_every_backend(self, session):
        """The acceptance criterion: one request, three interchangeable answers."""
        answers = {
            backend: api.evaluate(_request(backend=backend), session=session)
            for backend in api.backend_names()
        }
        analytical = answers["analytical"]
        exact = answers["analytical_exact"]
        simulator = answers["simulator"]
        # The engine is bit-identical to the replay, so the two analytical
        # backends agree exactly.
        assert analytical.cycles == exact.cycles
        assert analytical.cpi_stack == exact.cpi_stack
        # The simulator is the reference the model tracks within its error.
        assert simulator.cpi_stack is None
        assert analytical.cpi == pytest.approx(simulator.cpi, rel=0.2)
        for result in answers.values():
            assert result.instructions == analytical.instructions
            assert result.workload == "sha"

    def test_aliases_resolve_to_canonical_backend(self, session):
        result = api.evaluate(_request(backend="model"), session=session)
        assert result.backend == "analytical"

    def test_unknown_backend_lists_known(self, session):
        with pytest.raises(KeyError, match="unknown evaluation backend"):
            api.evaluate(_request(backend="quantum"), session=session)

    def test_capability_matrix(self):
        matrix = dict(api.capability_matrix())
        assert matrix["analytical"].cpi_stack
        assert not matrix["analytical"].cycle_accurate
        assert matrix["analytical_exact"].exact_miss_events
        assert matrix["simulator"].cycle_accurate

    def test_third_party_backend_plugs_in(self, session):
        @api.register_backend("constant_cpi")
        class ConstantBackend(EvalBackend):
            name = "constant_cpi"
            capabilities = BackendCapabilities(power=False)

            def evaluate(self, session, workload, machine, *,
                         with_power=False, mlp_window=64):
                instructions = len(workload.trace())
                return PointEvaluation(machine=machine,
                                       instructions=instructions,
                                       cycles=2.0 * instructions)

        try:
            result = api.evaluate(_request(backend="constant_cpi"),
                                  session=session)
            assert result.cpi == pytest.approx(2.0)
        finally:
            BACKENDS.unregister("constant_cpi")


class TestBatch:
    def test_parallel_batch_is_byte_identical_to_serial(self, tmp_path):
        requests = [
            _request(workload=api.WorkloadSpec(name), machine=machine,
                     backend=backend)
            for name in ("sha", "qsort")
            for machine in (api.MachineSpec("paper_default"),
                            api.MachineSpec.make("paper_default", width=1))
            for backend in ("analytical", "simulator")
        ]
        serial = api.evaluate_many(requests, jobs=1)
        parallel = api.evaluate_many(requests, jobs=2,
                                     cache_dir=tmp_path / "cache")
        to_bytes = lambda results: json.dumps(  # noqa: E731
            [result.to_dict() for result in results]).encode()
        assert to_bytes(serial) == to_bytes(parallel)

    def test_session_and_jobs_are_mutually_exclusive(self, session):
        with pytest.raises(ValueError, match="not both"):
            api.evaluate_many([_request()], session=session, jobs=2)

    def test_batch_validates_before_any_work(self):
        bad = [
            {"workload": "sha"},
            {"workload": "sha", "machine": {"preset": "warp_drive"}},
        ]
        with pytest.raises(KeyError, match="unknown machine preset"):
            api.evaluate_many(bad)
        with pytest.raises(ValueError, match="unknown workload"):
            api.evaluate_many([{"workload": "nonesuch"}])
        with pytest.raises(ValueError, match="unknown compiler flags"):
            api.evaluate_many([{"workload": {"name": "sha", "flags": "O9"}}])
        with pytest.raises(ValueError, match="unknown machine parameters"):
            api.validate_requests([_request(
                machine=api.MachineSpec.make(l2_sise="1MB"))])

    def test_validation_errors_list_the_valid_choices(self):
        """Every unknown-name message names the choices, not just the value."""
        with pytest.raises(KeyError, match="paper_default"):
            api.validate_requests([api.EvalRequest.parse(
                {"workload": "sha", "machine": "warp_drive"})])
        with pytest.raises(KeyError, match="analytical.*simulator"):
            api.validate_requests([api.EvalRequest.parse(
                {"workload": "sha", "backend": "oracle"})])
        with pytest.raises(ValueError, match="sha"):
            api.validate_requests([api.EvalRequest.parse(
                {"workload": "nonesuch"})])
        with pytest.raises(ValueError, match="O3.*nosched.*unroll"):
            api.validate_requests([api.EvalRequest.parse(
                {"workload": {"name": "sha", "flags": "O9"}})])

    def test_validation_errors_name_the_failing_batch_entry(self):
        requests = [
            api.EvalRequest.parse({"workload": "sha"}),
            api.EvalRequest.parse({"workload": "sha", "backend": "oracle"}),
        ]
        with pytest.raises(KeyError, match=r"request\[1\]"):
            api.validate_requests(requests)

    def test_override_modified_machines_get_distinct_labels(self, session):
        plain, modified = api.evaluate_many([
            {"workload": "sha"},
            {"workload": "sha", "machine": {"l2_size": "1MB"}},
        ], session=session)
        assert plain.machine == "default"
        assert modified.machine == "paper_default+l2_size=1MB"
        # An explicit name override wins over the synthesized label.
        named = api.evaluate(
            {"workload": "sha", "machine": {"l2_size": "1MB", "name": "big"}},
            session=session)
        assert named.machine == "big"

    def test_results_table_renders_through_reporters(self, session):
        from repro.runtime.reporters import render

        results = api.evaluate_many([_request()], session=session)
        table = results_table(results)
        text = render(table, "text")
        assert "sha" in text and "analytical" in text
        payload = json.loads(render(table, "json"))
        restored = api.EvalResult.from_dict(payload["metadata"]["results"][0])
        assert restored == results[0]


class TestSweep:
    def test_grid_expansion_counts_and_order(self):
        sweep = api.SweepRequest.make(
            ["sha"],
            axes={"width": (1, 2), "l2_size": ("256KB", "1MB")},
            backends=("analytical", "simulator"),
        )
        requests = sweep.expand()
        assert len(requests) == len(sweep) == 1 * 4 * 2
        # Backends innermost: adjacent requests share their machine.
        assert requests[0].machine == requests[1].machine
        assert requests[0].backend == "analytical"
        assert requests[1].backend == "simulator"

    def test_coupled_axes(self):
        sweep = api.SweepRequest.make(
            ["sha"],
            axes={"pipeline_stages,frequency_mhz": ((5, 600), (9, 1000))},
        )
        machines = sweep.configurations()
        assert [(m.pipeline_stages, m.frequency_mhz) for m in machines] == \
            [(5, 600), (9, 1000)]

    def test_explicit_machines_and_axes_are_mutually_exclusive(self):
        sweep = api.SweepRequest.make(
            ["sha"],
            axes={"width": (1, 2)},
            machines=[{"preset": "paper_default"}],
        )
        with pytest.raises(ValueError, match="not both"):
            sweep.machine_grid()

    def test_coupled_axis_arity_mismatch_is_an_error(self):
        sweep = api.SweepRequest.make(
            ["sha"], axes={"pipeline_stages,frequency_mhz": ((5, 600, 1),)}
        )
        with pytest.raises(ValueError, match="coupled axis"):
            sweep.machine_grid()

    def test_sweep_json_round_trip(self):
        sweep = api.SweepRequest.make(
            ["sha", {"name": "qsort", "flags": "nosched"}],
            base={"preset": "paper_default", "l1d_size": "16KB"},
            axes={"width": (1, 4),
                  "pipeline_stages,frequency_mhz": ((5, 600), (9, 1000))},
            backends=("analytical",),
            with_power=True,
        )
        clone = api.SweepRequest.from_json(sweep.to_json())
        assert clone == sweep
        assert clone.expand() == sweep.expand()

    def test_design_space_to_sweep_preserves_configurations(self):
        space = reduced_design_space()
        sweep = space.to_sweep(("sha",), backends=("analytical", "simulator"))
        resolved = sweep.configurations()
        expected = space.configurations()
        assert resolved == expected
        assert [m.name for m in resolved] == [m.name for m in expected]
        assert len(sweep) == len(expected) * 2
        # And the whole thing still serializes.
        assert api.SweepRequest.from_json(sweep.to_json()) == sweep

    def test_sweep_batch_matches_explorer(self):
        """The sweep adapter answers exactly what the explorer answers."""
        from repro.dse.explorer import DesignSpaceExplorer

        space = reduced_design_space()
        configurations = space.configurations()[:4]
        session = Session()
        explorer = DesignSpaceExplorer(configurations, session=session)
        workload = get_workload("sha")
        points = explorer.evaluate(workload, simulate=True)

        sweep = api.SweepRequest(
            workloads=(api.WorkloadSpec("sha"),),
            machines=tuple(api.MachineSpec.from_machine(machine)
                           for machine in configurations),
            backends=("analytical", "simulator"),
        )
        results = api.evaluate_many(sweep.expand(), session=session)
        for point, predicted, simulated in zip(points, results[0::2], results[1::2]):
            assert predicted.cpi == point.model_cpi
            assert simulated.cpi == point.simulated_cpi
            assert predicted.machine == point.machine.name


class TestRegistriesPlugIn:
    def test_custom_branch_predictor_reaches_the_model(self, session):
        from repro.branch.predictors import PREDICTORS, BranchPredictor, register_predictor

        @register_predictor("coinflip_static")
        class _Coinflip(BranchPredictor):
            name = "coinflip_static"

            def predict(self, pc):
                return (pc >> 2) & 1 == 0

            def update(self, pc, taken):
                return None

        try:
            request = _request(
                machine=api.MachineSpec.make(branch_predictor="coinflip_static")
            )
            result = api.evaluate(request, session=session)
            assert result.cycles > 0
        finally:
            PREDICTORS.unregister("coinflip_static")

    def test_custom_workload_reaches_the_facade(self):
        from repro.workloads.registry import WORKLOADS, register_workload

        @register_workload("tiny_plugin", suite="plugin-suite")
        def _build():
            workload = get_workload("sha", use_cache=False)
            workload.name = "tiny_plugin"
            return workload

        try:
            result = api.evaluate({"workload": "tiny_plugin"})
            assert result.workload == "tiny_plugin"
            assert result.cycles > 0
        finally:
            WORKLOADS.unregister("tiny_plugin")

    def test_all_builders_shim_warns(self):
        import repro.workloads.registry as registry

        with pytest.warns(DeprecationWarning, match="_ALL_BUILDERS"):
            builders = registry._ALL_BUILDERS
        assert "sha" in builders


class TestRequestFiles:
    def test_payload_forms(self):
        single = api.parse_request_payload({"workload": "sha"})
        listed = api.parse_request_payload([{"workload": "sha"},
                                            {"workload": "qsort"}])
        swept = api.parse_request_payload({
            "workloads": ["sha"], "axes": {"width": [1, 2]},
        })
        envelope = api.parse_request_payload({
            "requests": [{"workload": "sha"}],
            "sweeps": [{"workloads": ["qsort"], "axes": {"width": [1, 2]}}],
        })
        assert len(single) == 1 and len(listed) == 2
        assert len(swept) == 2 and len(envelope) == 3

    def test_bad_payloads_are_clear_errors(self):
        with pytest.raises(ValueError, match="unknown request-envelope keys"):
            api.parse_request_payload({"requests": [], "sweep": {}})
        with pytest.raises(ValueError, match="workload"):
            api.parse_request_payload({"backend": "analytical"})


class TestEvalCLI:
    def _run(self, argv):
        stdout, stderr = io.StringIO(), io.StringIO()
        with contextlib.redirect_stdout(stdout), contextlib.redirect_stderr(stderr):
            exit_code = cli_main(argv)
        assert exit_code == 0
        return stdout.getvalue()

    def test_eval_request_file_text_and_csv(self, tmp_path):
        request_file = tmp_path / "request.json"
        request_file.write_text(json.dumps({
            "workloads": ["sha"],
            "machine": {"preset": "paper_default"},
            "axes": {"width": [1, 4]},
            "backends": ["analytical", "simulator"],
        }))
        text = self._run(["eval", str(request_file)])
        assert "repro.api evaluation — 4 request(s)" in text
        assert "simulator" in text
        csv_output = self._run(["eval", str(request_file), "--format", "csv"])
        lines = csv_output.strip().splitlines()
        assert lines[0].startswith("workload,flags,machine,backend")
        assert len(lines) == 1 + 4

    def test_eval_json_is_lossless(self, tmp_path):
        request_file = tmp_path / "request.json"
        request_file.write_text(json.dumps({"workload": "sha",
                                            "with_power": True}))
        payload = json.loads(self._run(["eval", str(request_file),
                                        "--format", "json"]))
        result = api.EvalResult.from_dict(payload["metadata"]["results"][0])
        direct = api.evaluate(api.EvalRequest.from_dict(
            {"workload": "sha", "with_power": True}))
        assert result == direct

    def test_eval_backends_flag(self):
        output = self._run(["eval", "--backends"])
        for name in api.backend_names():
            assert name in output

    def test_eval_without_requests_errors(self):
        with pytest.raises(SystemExit, match="request file"):
            cli_main(["eval"])

    def test_eval_bad_file_is_a_clean_exit(self, tmp_path):
        request_file = tmp_path / "bad.json"
        request_file.write_text(json.dumps({"workload": "sha", "wierd": 1}))
        with pytest.raises(SystemExit, match="wierd"):
            cli_main(["eval", str(request_file)])

    def test_eval_unresolvable_names_are_clean_exits(self, tmp_path):
        # Semantic errors (valid JSON, unknown names) must exit cleanly
        # too, not escape as tracebacks from the evaluation layer.
        for payload, match in (
            ({"workload": "sha", "machine": {"preset": "warp_drive"}},
             "unknown machine preset"),
            ({"workload": "nonesuch"}, "unknown workload"),
            ({"workload": "sha", "backend": "quantum"},
             "unknown evaluation backend"),
            ({"workload": "sha", "machine": {"l2_size": True}},
             "size must be"),
        ):
            request_file = tmp_path / "semantic.json"
            request_file.write_text(json.dumps(payload))
            with pytest.raises(SystemExit, match=match):
                cli_main(["eval", str(request_file)])

    def test_eval_missing_file_is_a_clean_exit(self, tmp_path):
        with pytest.raises(SystemExit, match="nosuchfile"):
            cli_main(["eval", str(tmp_path / "nosuchfile.json")])
