"""Serving the search: ``POST /v1/optimize``, the CLI, and the executor.

The acceptance bar is byte-identity: for the same request and seed, the
in-process :func:`repro.search.optimize` JSON, the ``repro optimize
--format json`` stdout and the ``POST /v1/optimize`` response body are
the same bytes.
"""

from __future__ import annotations

import asyncio
import contextlib
import io
import json

import pytest

from repro.search import OptimizeRequest, optimize
from repro.service import (
    EvalExecutor,
    ServerThread,
    ServiceClient,
    ServiceConfig,
    ServiceError,
)


def _request_payload(**overrides) -> dict:
    payload = {
        "space": {"axes": [
            {"axis": "width", "values": [1, 2]},
            {"axis": "l2_size", "values": ["256KB", "1MB"]},
        ]},
        "workload": "sha",
        "objectives": ["edp"],
        "strategy": "random",
        "budget": 3,
        "batch": 2,
        "seed": 42,
        "tag": "served-search",
    }
    payload.update(overrides)
    return payload


@pytest.fixture(scope="module")
def server(tmp_path_factory):
    config = ServiceConfig(
        port=0, jobs=1, max_queue=16,
        cache_dir=str(tmp_path_factory.mktemp("search-service-cache")),
    )
    with ServerThread(config) as running:
        yield running


@pytest.fixture(scope="module")
def client(server):
    client = ServiceClient(port=server.port)
    client.wait_ready()
    return client


class TestServedOptimize:
    def test_response_is_byte_identical_to_in_process_search(self, client):
        payload = _request_payload()
        served = client.optimize_raw(payload)
        direct = optimize(OptimizeRequest.from_dict(payload)).to_json()
        assert served == direct.encode("utf-8")

    def test_decoded_result_carries_front_and_best(self, client):
        result = client.optimize(_request_payload(seed=7))
        assert result.evaluations <= 3
        assert result.best is not None
        assert result.best["index"] in [e["index"] for e in result.front]
        assert result.request.tag == "served-search"

    def test_repeat_request_is_answered_from_the_cache(self, client):
        payload = _request_payload(seed=9, tag="cache-probe")
        first = client.optimize_raw(payload)
        hits_before = client.metrics()["cache"]["hits"]
        second = client.optimize_raw(payload)
        assert second == first
        assert client.metrics()["cache"]["hits"] == hits_before + 1

    def test_infeasible_constraint_is_a_400_naming_the_field(self, client):
        with pytest.raises(ServiceError) as info:
            client.optimize(_request_payload(constraints=["l2_size<=1KB"]))
        assert info.value.status == 400
        assert "constraints[0]" in info.value.message
        assert "infeasible" in info.value.message

    def test_unknown_strategy_is_a_400(self, client):
        with pytest.raises(ServiceError) as info:
            client.optimize(_request_payload(strategy="genetic"))
        assert info.value.status == 400
        assert "strategy" in info.value.message

    def test_malformed_body_is_a_400(self, client):
        status, body = client._request("POST", "/v1/optimize",
                                       b'{"space": 5}')
        assert status == 400
        assert "workload" in json.loads(body.decode("utf-8"))["error"]


class TestCliOptimize:
    def test_json_output_matches_service_bytes(self, client, tmp_path):
        from repro.cli import main as cli_main

        payload = _request_payload(seed=13, tag="cli-parity")
        request_file = tmp_path / "request.json"
        request_file.write_text(json.dumps(payload))
        stdout = io.StringIO()
        with contextlib.redirect_stdout(stdout), \
                contextlib.redirect_stderr(io.StringIO()):
            exit_code = cli_main([
                "optimize", str(request_file), "--format", "json",
                "--cache-dir", str(tmp_path / "cache"),
            ])
        assert exit_code == 0
        served = client.optimize_raw(payload).decode("utf-8")
        assert stdout.getvalue() == served + "\n"

    def test_text_output_reports_front_and_best(self, tmp_path):
        from repro.cli import main as cli_main

        request_file = tmp_path / "request.json"
        request_file.write_text(json.dumps(_request_payload()))
        stdout = io.StringIO()
        with contextlib.redirect_stdout(stdout), \
                contextlib.redirect_stderr(io.StringIO()):
            exit_code = cli_main([
                "optimize", str(request_file),
                "--cache-dir", str(tmp_path / "cache"),
            ])
        assert exit_code == 0
        text = stdout.getvalue()
        assert "strategy=random" in text
        assert "best:" in text

    def test_invalid_request_exits_with_named_field_error(self, tmp_path):
        from repro.cli import main as cli_main

        request_file = tmp_path / "request.json"
        request_file.write_text(json.dumps(
            _request_payload(constraints=["l2_size<=1KB"])))
        with pytest.raises(SystemExit, match="constraints\\[0\\]"):
            with contextlib.redirect_stdout(io.StringIO()):
                cli_main(["optimize", str(request_file),
                          "--cache-dir", str(tmp_path / "cache")])


class TestExecutorCalls:
    def test_submit_call_runs_on_the_session_and_resolves(self):
        async def scenario():
            executor = EvalExecutor(session=None, jobs=1, max_queue=4,
                                    runner=lambda requests: list(requests))
            executor.start()
            value = await executor.submit_call(
                lambda session: ("ran", session))
            await executor.drain()
            return value

        assert asyncio.run(scenario()) == ("ran", None)

    def test_submit_call_exception_surfaces_on_future(self):
        def boom(session):
            raise RuntimeError("search exploded")

        async def scenario():
            executor = EvalExecutor(session=None, jobs=1, max_queue=4,
                                    runner=lambda requests: list(requests))
            executor.start()
            with pytest.raises(RuntimeError, match="search exploded"):
                await executor.submit_call(boom)
            await executor.drain()

        asyncio.run(scenario())
