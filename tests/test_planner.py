"""Sweep-planner tests: grouping, zero-copy trace shipping, byte identity."""

from __future__ import annotations

import json

import pytest

from repro.api import evaluate_many
from repro.api.planner import plan_requests, evaluate_group
from repro.api.spec import EvalRequest, MachineSpec, WorkloadSpec
from repro.dse.space import reduced_design_space
from repro.runtime.session import Session
from repro.trace.trace import TRACE_SCHEMA_VERSION, Trace
from repro.workloads import get_workload


def _sweep_requests():
    return reduced_design_space().to_sweep(["sha", "dijkstra"]).expand()


def _serialized(results) -> str:
    return json.dumps([result.to_dict() for result in results])


# ----------------------------------------------------------------------
# Planning.
# ----------------------------------------------------------------------
def test_groups_cover_the_batch_exactly_once():
    requests = _sweep_requests()
    groups = plan_requests(requests, jobs=1)
    seen = sorted(index for group in groups for index in group.indices)
    assert seen == list(range(len(requests)))
    assert {group.workload for group in groups} == {"sha", "dijkstra"}
    for group in groups:
        assert group.trace_version == TRACE_SCHEMA_VERSION
        for index, request in zip(group.indices, group.requests):
            assert requests[index] is request


def test_group_carries_resolved_machines_and_labels():
    requests = [
        EvalRequest(workload=WorkloadSpec("sha"),
                    machine=MachineSpec.make("paper_default",
                                             l2_size="1MB")),
        EvalRequest(workload=WorkloadSpec("sha")),
    ]
    (group,) = plan_requests(requests, jobs=1)
    labels = {label for _, _, label in group.machines}
    assert "paper_default+l2_size=1MB" in labels
    for spec, machine, _ in group.machines:
        assert spec.resolve() == machine


def test_requests_ordered_by_pass_signature_within_group():
    requests = _sweep_requests()
    (group,) = [g for g in plan_requests(requests, jobs=1)
                if g.workload == "sha"]
    machines = {spec: machine for spec, machine, _ in group.machines}

    def l2_geometry(request):
        machine = machines[request.machine]
        return (machine.l2_size // (machine.l2_associativity
                                    * machine.line_size),
                machine.branch_predictor)

    signatures = [l2_geometry(request) for request in group.requests]
    assert signatures == sorted(signatures)


def test_single_workload_sweep_splits_across_workers():
    requests = reduced_design_space().to_sweep(["sha"]).expand()
    groups = plan_requests(requests, jobs=4)
    assert len(groups) > 1
    seen = sorted(index for group in groups for index in group.indices)
    assert seen == list(range(len(requests)))


# ----------------------------------------------------------------------
# Zero-copy trace transport.
# ----------------------------------------------------------------------
def test_trace_payload_round_trip():
    trace = get_workload("sha").trace()
    payload = trace.to_payload()
    clone = Trace.from_payload(payload)
    assert clone.name == trace.name
    assert clone.pcs == trace.pcs
    assert clone.mem_addrs == trace.mem_addrs
    assert clone.op_classes == trace.op_classes
    assert clone.taken == trace.taken
    assert clone.static_index == trace.static_index
    assert list(clone.seqs) == list(trace.seqs)


def test_trace_payload_schema_mismatch_rejected():
    payload = get_workload("sha").trace().to_payload()
    payload["schema_version"] = -1
    with pytest.raises(ValueError, match="payload schema"):
        Trace.from_payload(payload)


def test_session_trace_payload_never_triggers_compilation():
    session = Session()
    assert session.trace_payload("sha") is None
    assert session.stats.workloads_compiled == 0
    session.workload("sha")
    assert session.trace_payload("sha") is not None


def test_adopted_trace_skips_compilation_in_the_worker():
    parent = Session()
    payload = parent.workload("sha").trace().to_payload()
    requests = tuple(
        EvalRequest(workload=WorkloadSpec("sha"),
                    machine=MachineSpec(preset)) for preset in
        ("paper_default", "big_l2_1mb")
    )
    (group,) = plan_requests(list(requests), jobs=1)
    worker = Session()
    results = evaluate_group(worker, group.with_payload(payload))
    assert len(results) == len(requests)
    assert worker.stats.workloads_compiled == 0
    assert worker.stats.traces_generated == 0


def test_adopt_trace_rejects_unknown_flags():
    trace = get_workload("sha").trace()
    with pytest.raises(ValueError, match="compiler flags"):
        Session().adopt_trace("sha", "O9", trace)


def test_segment_handle_payload_attaches_without_compilation():
    from repro.runtime.dataplane import (
        SegmentRegistry,
        detach_all,
        shared_memory_available,
    )

    if not shared_memory_available():
        pytest.skip("POSIX shared memory unavailable")
    parent = Session()
    registry = SegmentRegistry()
    try:
        handle = registry.publish(parent.workload("sha").trace())
        requests = [
            EvalRequest(workload=WorkloadSpec("sha"),
                        machine=MachineSpec(preset))
            for preset in ("paper_default", "big_l2_1mb")
        ]
        (group,) = plan_requests(requests, jobs=1)
        worker = Session()
        results = evaluate_group(worker, group.with_payload(handle))
        assert len(results) == len(requests)
        assert worker.stats.workloads_compiled == 0
        assert worker.stats.traces_generated == 0
        # Same answers as the payload-dict transport.
        payload_results = evaluate_group(
            Session(), group.with_payload(parent.trace_payload("sha")))
        assert ([r.to_dict() for r in results]
                == [r.to_dict() for r in payload_results])
    finally:
        detach_all()
        registry.close()


def test_segment_handle_schema_mismatch_rejected():
    from dataclasses import replace

    from repro.runtime.dataplane import (
        SegmentRegistry,
        shared_memory_available,
    )

    if not shared_memory_available():
        pytest.skip("POSIX shared memory unavailable")
    parent = Session()
    registry = SegmentRegistry()
    try:
        handle = registry.publish(parent.workload("sha").trace())
        (group,) = plan_requests(
            [EvalRequest(workload=WorkloadSpec("sha"))], jobs=1)
        stale = replace(handle, schema_version=-1)
        with pytest.raises(ValueError, match="mismatched trace segment"):
            evaluate_group(Session(), group.with_payload(stale))
    finally:
        registry.close()


# ----------------------------------------------------------------------
# Byte identity across planning modes and job counts.
# ----------------------------------------------------------------------
def test_planned_output_identical_to_unplanned():
    requests = _sweep_requests()
    planned = _serialized(evaluate_many(requests))
    unplanned = _serialized(evaluate_many(requests, plan=False))
    assert planned == unplanned


def test_parallel_planned_output_identical_to_serial():
    requests = _sweep_requests()
    serial = _serialized(evaluate_many(requests, jobs=1))
    parallel = _serialized(evaluate_many(requests, jobs=2))
    assert serial == parallel


def test_mixed_backend_batches_still_plan_correctly():
    requests = [
        EvalRequest(workload=WorkloadSpec("sha"), backend="analytical"),
        EvalRequest(workload=WorkloadSpec("sha"), backend="simulator"),
        EvalRequest(workload=WorkloadSpec("sha"), backend="analytical_exact"),
    ]
    planned = _serialized(evaluate_many(requests))
    unplanned = _serialized(evaluate_many(requests, plan=False))
    assert planned == unplanned


def test_with_power_requests_take_the_scalar_path():
    requests = [
        EvalRequest(workload=WorkloadSpec("sha"), with_power=True),
        EvalRequest(workload=WorkloadSpec("sha")),
    ]
    results = evaluate_many(requests)
    assert results[0].energy_joules is not None
    assert results[1].energy_joules is None
    assert _serialized(results) == _serialized(
        evaluate_many(requests, plan=False)
    )
