"""Ablation benchmarks for the model's design choices.

Each ablation disables one ingredient of the model and measures how much the
prediction error against detailed simulation degrades, quantifying how much
that ingredient matters:

* the taken-branch hit penalty (Section 3.3),
* the (W-1)/2W uniform-placement correction (Eqs. 3, 4, 6),
* the inter-instruction dependency penalties (Section 3.5).
"""

from __future__ import annotations

import pytest

from repro.core.model import InOrderMechanisticModel
from repro.pipeline.inorder import InOrderPipeline
from repro.profiler.machine_stats import profile_machine
from repro.profiler.program import profile_program
from repro.workloads import mibench_suite

ABLATION_BENCHMARKS = ["sha", "dijkstra", "qsort", "tiffdither", "gsm_c", "tiff2bw"]


def _average_error(machine, **model_flags) -> float:
    errors = []
    for workload in mibench_suite(ABLATION_BENCHMARKS):
        trace = workload.trace()
        simulated = InOrderPipeline(machine).run(trace)
        program = profile_program(trace)
        misses = profile_machine(trace, machine)
        model = InOrderMechanisticModel(machine, **model_flags).predict(program, misses)
        errors.append(abs(model.cpi - simulated.cpi) / simulated.cpi)
    return sum(errors) / len(errors)


@pytest.fixture(scope="module")
def full_model_error(default_machine):
    return _average_error(default_machine)


def test_full_model_error(benchmark, default_machine):
    error = benchmark.pedantic(
        _average_error, args=(default_machine,), rounds=1, iterations=1
    )
    assert error < 0.08


def test_ablation_without_dependency_penalty(benchmark, default_machine, full_model_error):
    error = benchmark.pedantic(
        _average_error,
        args=(default_machine,),
        kwargs={"include_dependency_penalty": False},
        rounds=1,
        iterations=1,
    )
    # Dropping the dependency model is catastrophic for in-order prediction.
    assert error > full_model_error * 2


def test_ablation_without_taken_branch_penalty(benchmark, default_machine, full_model_error):
    error = benchmark.pedantic(
        _average_error,
        args=(default_machine,),
        kwargs={"include_taken_branch_penalty": False},
        rounds=1,
        iterations=1,
    )
    # The taken-branch bubble is a second-order ingredient: removing it moves
    # the error by a few percentage points at most.
    assert error < full_model_error + 0.10


def test_ablation_without_slot_correction(benchmark, default_machine, full_model_error):
    error = benchmark.pedantic(
        _average_error,
        args=(default_machine,),
        kwargs={"include_slot_correction": False},
        rounds=1,
        iterations=1,
    )
    assert error < full_model_error + 0.10
