"""Micro-benchmarks of the individual subsystems.

These quantify the cost of each pipeline stage of the framework (functional
simulation, profiling, cache simulation, detailed simulation, model
evaluation), which is the basis of the paper's speedup argument: everything
except the one-off profiling is effectively free compared to detailed
simulation.
"""

from __future__ import annotations

from repro.branch.predictors import make_predictor
from repro.branch.profiler import profile_branches
from repro.core.model import InOrderMechanisticModel
from repro.memory.hierarchy import CacheHierarchy
from repro.memory.single_pass import StackDistanceProfiler
from repro.pipeline.inorder import InOrderPipeline
from repro.pipeline.ooo import OutOfOrderPipeline
from repro.profiler.machine_stats import profile_machine
from repro.profiler.program import profile_program
from repro.workloads import get_workload
from repro.workloads.compiler import InstructionScheduler, LoopUnroller


def test_functional_simulation_throughput(benchmark):
    workload = get_workload("sha")
    result = benchmark.pedantic(
        lambda: workload.trace(force=True), rounds=2, iterations=1
    )
    assert len(result) > 10_000


def test_program_profiling(benchmark, sha_trace):
    profile = benchmark(profile_program, sha_trace)
    assert profile.instructions == len(sha_trace)


def test_machine_profiling(benchmark, sha_trace, default_machine):
    misses = benchmark.pedantic(
        profile_machine, args=(sha_trace, default_machine), rounds=2, iterations=1
    )
    assert misses.instructions == len(sha_trace)


def test_cache_hierarchy_throughput(benchmark, sha_trace, default_machine):
    addresses = [dyn.mem_addr for dyn in sha_trace if dyn.mem_addr is not None]

    def run():
        hierarchy = CacheHierarchy(default_machine.memory_hierarchy_config())
        for address in addresses:
            hierarchy.access_data(address)
        return hierarchy.stats.data_accesses

    assert benchmark(run) == len(addresses)


def test_single_pass_profiler_throughput(benchmark, sha_trace):
    addresses = [dyn.mem_addr for dyn in sha_trace if dyn.mem_addr is not None]

    def run():
        profiler = StackDistanceProfiler(sets=128, line_size=64)
        return profiler.profile(addresses)

    result = benchmark(run)
    assert result.accesses == len(addresses)


def test_branch_predictor_throughput(benchmark, sha_trace):
    def run():
        return profile_branches(sha_trace, make_predictor("hybrid_3.5kb"))

    profile = benchmark(run)
    assert profile.conditional_branches > 0


def test_detailed_inorder_simulation(benchmark, sha_trace, default_machine):
    result = benchmark.pedantic(
        InOrderPipeline(default_machine).run, args=(sha_trace,), rounds=2, iterations=1
    )
    assert result.cycles > 0


def test_detailed_ooo_simulation(benchmark, sha_trace, default_machine):
    result = benchmark.pedantic(
        OutOfOrderPipeline(default_machine).run, args=(sha_trace,), rounds=2, iterations=1
    )
    assert result.cycles > 0


def test_model_evaluation_is_instantaneous(benchmark, sha_trace, default_machine):
    """The paper's key speed claim: evaluating the formulas takes microseconds."""
    program = profile_program(sha_trace)
    misses = profile_machine(sha_trace, default_machine)
    model = InOrderMechanisticModel(default_machine)
    result = benchmark(model.predict, program, misses)
    assert result.cpi > 0
    assert benchmark.stats.stats.mean < 0.01  # well under 10 ms per evaluation


def test_instruction_scheduler(benchmark):
    program = get_workload("sha", use_cache=False, optimize=False).program
    scheduled = benchmark(InstructionScheduler().run, program)
    assert len(scheduled) == len(program)


def test_loop_unroller(benchmark):
    program = get_workload("tiff2bw", use_cache=False, optimize=False).program
    unrolled = benchmark(LoopUnroller(factor=2).run, program)
    assert len(unrolled) >= len(program)
