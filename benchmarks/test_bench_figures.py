"""Benchmark harness: regenerate every table and figure of the paper.

Each benchmark times one experiment driver and asserts the headline property
the paper reports for that artefact, so ``pytest benchmarks/ --benchmark-only``
both regenerates the results and sanity-checks their shape:

* Table 2  — the 192-point design space enumerates correctly.
* Figure 3 — model vs detailed simulation on the 19 MiBench-like kernels.
* Figure 4 — CPI stacks vs width; sha scales, dijkstra saturates.
* Figure 5 — error CDF over the (reduced) design space.
* Figure 6 — SPEC-like memory-intensive validation.
* Figure 7 — in-order vs out-of-order CPI stacks.
* Figure 8 — compiler optimization cycle stacks.
* Figure 9 — EDP design-space exploration.
* Section 5 — model vs detailed-simulation speedup.
"""

from __future__ import annotations

from repro.experiments import (
    figure3,
    figure4,
    figure5,
    figure6,
    figure7,
    figure8,
    figure9,
    speedup,
    table2,
)

#: Reduced benchmark selections keep one harness run to a few minutes while
#: still exercising every experiment end to end.  The CLI (``repro-experiments
#: --full``) runs the complete versions.
FIGURE5_BENCHMARKS = ("sha", "dijkstra", "tiff2bw")
FIGURE7_BENCHMARKS = ("dijkstra", "patricia", "tiff2bw", "tiff2rgba")
FIGURE9_BENCHMARKS = ("adpcm_d", "gsm_c")


def test_table2_design_space(benchmark):
    result = benchmark(table2.run)
    assert result.design_points == 192


def test_figure3_mibench_validation(benchmark, default_machine):
    result = benchmark.pedantic(
        figure3.run, kwargs={"machine": default_machine}, rounds=1, iterations=1
    )
    assert len(result.rows) == 19
    # Paper: 3.1% average, 8.4% max on the default configuration.
    assert result.summary.average_absolute_error < 0.08
    assert result.summary.maximum_absolute_error < 0.20


def test_figure4_width_scaling(benchmark, default_machine):
    result = benchmark.pedantic(
        figure4.run, kwargs={"machine": default_machine}, rounds=1, iterations=1
    )
    sha = {p.width: p.stack.cpi for p in result.for_benchmark("sha")}
    dijkstra = {p.width: p.stack.cpi for p in result.for_benchmark("dijkstra")}
    # sha benefits the most from superscalar processing, dijkstra the least.
    assert sha[1] / sha[4] > dijkstra[1] / dijkstra[4]


def test_figure5_design_space_error_cdf(benchmark):
    result = benchmark.pedantic(
        figure5.run,
        kwargs={"full": False, "benchmarks": FIGURE5_BENCHMARKS},
        rounds=1,
        iterations=1,
    )
    # Paper: 2.5% average, 9.6% max, 90% of points below 6%.
    assert result.summary.average_absolute_error < 0.08
    assert result.summary.maximum_absolute_error < 0.20
    assert result.fraction_below_6_percent > 0.5


def test_figure6_spec_validation(benchmark, default_machine):
    result = benchmark.pedantic(
        figure6.run, kwargs={"machine": default_machine}, rounds=1, iterations=1
    )
    # Paper: 4.1% average, 10.7% max; SPEC CPIs are much higher than MiBench.
    assert result.summary.average_absolute_error < 0.10
    assert max(row.simulated_cpi for row in result.rows) > 2.0


def test_figure7_inorder_vs_ooo(benchmark, default_machine):
    result = benchmark.pedantic(
        figure7.run,
        kwargs={"benchmarks": FIGURE7_BENCHMARKS, "machine": default_machine},
        rounds=1,
        iterations=1,
    )
    for row in result.rows:
        assert row.out_of_order.cpi < row.in_order.cpi
        assert row.in_order.grouped().get("dependencies", 0.0) > 0.0


def test_figure8_compiler_optimizations(benchmark, default_machine):
    result = benchmark.pedantic(
        figure8.run, kwargs={"machine": default_machine}, rounds=1, iterations=1
    )
    # Scheduling never hurts on these kernels and unrolling reduces N for
    # at least one of them (the paper's main observations).
    for name in ("sha", "tiffdither", "gsm_c"):
        rows = {row.variant: row for row in result.for_benchmark(name)}
        assert rows["nosched"].normalized_cycles >= 0.99
    assert any(
        row.variant == "unroll" and row.instructions < next(
            other.instructions for other in result.rows
            if other.benchmark == row.benchmark and other.variant == "O3"
        )
        for row in result.rows
    )


def test_figure9_edp_exploration(benchmark):
    result = benchmark.pedantic(
        figure9.run,
        kwargs={"benchmarks": FIGURE9_BENCHMARKS, "full": False},
        rounds=1,
        iterations=1,
    )
    # Paper: the model's pick is the true optimum or within a few percent EDP.
    for row in result.rows:
        assert row.edp_gap < 0.05


def test_speedup_model_vs_simulation(benchmark):
    result = benchmark.pedantic(
        speedup.run, kwargs={"benchmark": "sha"}, rounds=1, iterations=1
    )
    # Paper: three orders of magnitude once profiling is amortised.
    assert result.speedup_model_only > 100
