#!/usr/bin/env python
"""Launcher for the core hot-path benchmark (see :mod:`repro.bench`).

Writes ``BENCH_core.json`` (schema v2: medians over ``--repeat`` runs plus
Python version and job count) so successive PRs have a perf trajectory.
Run via ``make bench`` or ``PYTHONPATH=src python benchmarks/run_bench.py``.
"""

from __future__ import annotations

import sys
from pathlib import Path

_SRC = Path(__file__).resolve().parent.parent / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

from repro.bench import main  # noqa: E402

if __name__ == "__main__":
    raise SystemExit(main())
