"""Shared fixtures for the benchmark harness.

Every benchmark regenerates one of the paper's tables or figures (see the
module docstring of ``test_bench_figures.py`` and the README's
"Reproducing the paper" section).  Workload traces are built once per
session so the timings measure the experiment itself, not the one-off
functional simulation.
"""

from __future__ import annotations

import pytest

from repro.machine import MachineConfig
from repro.workloads import get_workload, mibench_suite, spec_suite


@pytest.fixture(scope="session")
def default_machine() -> MachineConfig:
    return MachineConfig(name="default")


@pytest.fixture(scope="session", autouse=True)
def prebuilt_traces():
    """Materialise all workload traces once, before any timing starts."""
    for workload in mibench_suite() + spec_suite():
        workload.trace()
    return True


@pytest.fixture(scope="session")
def sha_trace():
    return get_workload("sha").trace()
