"""Legacy setup shim; the project is configured through pyproject.toml."""
from setuptools import setup

setup()
